// LoNode — one miner running the LØ accountable base layer (Alg. 1 + Sec. 5).
//
// Responsibilities:
//  * Stage I:  accept client transactions (submit_transaction), prevalidate,
//              commit them to the append-only log.
//  * Stage II: periodic sketch-driven mempool reconciliation with random
//              neighbors — the request carries only the signed commitment
//              (with a difference-sized sketch prefix); the responder decodes
//              the exact symmetric difference, returns the full ids the
//              requester lacks and asks (by sketch element) for the ones it
//              lacks itself. Only genuinely missing data crosses the wire.
//  * Stage III: canonical block building on leader election (create_block).
//  * Accountability: pending-request suspicion with retries and retractions,
//              commitment-coverage deadlines (a peer that receives our
//              transactions must commit to them or face suspicion),
//              equivocation detection on every observed commitment, blame
//              gossip, block inspection with signed-bundle retrieval.
//
// Adversarial variants are switched on through MaliciousBehavior; correct
// nodes and faulty nodes run the same class so that detection operates on
// real protocol traffic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/accountability.hpp"
#include "core/block.hpp"
#include "core/commitment_log.hpp"
#include "core/config.hpp"
#include "core/inspection.hpp"
#include "core/messages.hpp"
#include "core/transaction.hpp"
#include "core/types.hpp"
#include "crypto/keys.hpp"
#include "crypto/verify_cache.hpp"
#include "membership/swim.hpp"
#include "obs/hub.hpp"
#include "overlay/sampler.hpp"
#include "sim/simulator.hpp"

namespace lo::core {

// Experiment observation points. All optional; invoked synchronously.
struct Hooks {
  // A node admitted tx content to its mempool (Fig. 7 latency source).
  std::function<void(NodeId node, const Transaction& tx, sim::TimePoint when)>
      on_mempool_admit;
  // A node locally marked `suspect` as suspected (Fig. 6 "Suspicion").
  std::function<void(NodeId node, NodeId suspect, sim::TimePoint when)>
      on_suspect;
  // A node learned a verified exposure of `accused` (Fig. 6 "Exposure").
  std::function<void(NodeId node, NodeId accused, sim::TimePoint when)>
      on_exposure;
  // A node finished inspecting a received block.
  std::function<void(NodeId node, const Block& block, BlockVerdict verdict,
                     sim::TimePoint when)>
      on_block_inspected;
  // Sketch decode attempts performed (Fig. 10 reconciliation counting).
  // `decode_ok` is false when the symmetric difference overflowed the sketch
  // capacity and the round fell back to the recovery path.
  std::function<void(NodeId node, std::size_t decode_ops, bool decode_ok)>
      on_reconcile;
  // The membership failure detector of `node` moved `member` to `state`
  // (only fired when config.membership.enabled).
  std::function<void(NodeId node, NodeId member, membership::MemberState state,
                     sim::TimePoint when)>
      on_member_state;
};

// Retry/timeout/blame mechanism counters — fault tests assert on mechanism
// (how many retries and timeouts fired), not just outcomes.
struct NodeStats {
  std::uint64_t requests_sent = 0;        // pendings registered
  std::uint64_t retries_sent = 0;         // timeout resends
  std::uint64_t timeouts_fired = 0;       // timer fired with request unanswered
  std::uint64_t suspicions_raised = 0;    // own complaints reported
  std::uint64_t suspicions_retracted = 0; // own complaints withdrawn
  std::uint64_t crashes = 0;
  std::uint64_t restarts = 0;

  NodeStats& operator+=(const NodeStats& o) noexcept {
    requests_sent += o.requests_sent;
    retries_sent += o.retries_sent;
    timeouts_fired += o.timeouts_fired;
    suspicions_raised += o.suspicions_raised;
    suspicions_retracted += o.suspicions_retracted;
    crashes += o.crashes;
    restarts += o.restarts;
    return *this;
  }
};

class LoNode final : public sim::INode {
 public:
  LoNode(sim::Simulator& sim, NodeId id, const LoConfig& config,
         crypto::KeyPair keys, Hooks* hooks = nullptr);

  void set_neighbors(std::vector<NodeId> neighbors);
  const std::vector<NodeId>& neighbors() const noexcept { return neighbors_; }

  // Candidate peers for the rotation sampler (typically the whole
  // membership); only consulted when config.rotate_interval > 0.
  void set_peer_candidates(std::vector<NodeId> candidates);

  // Full member universe for the SWIM failure detector (self is filtered
  // out). Must be set before on_start() when config.membership.enabled;
  // falls back to the neighbor set otherwise.
  void set_member_universe(std::vector<NodeId> members);

  MaliciousBehavior& behavior() noexcept { return behavior_; }
  const MaliciousBehavior& behavior() const noexcept { return behavior_; }

  // Stage I: a client hands a transaction to this miner.
  void submit_transaction(const Transaction& tx);

  // Sec. 5.3 collusion modeling: receive a transaction off-channel, storing
  // the content without committing to it (no log entry, no acknowledgement).
  // Used by tests/examples to stage the collusion attack of Fig. 5.
  void stealth_store(const Transaction& tx);

  // Stage III: consensus elected this node; build, commit and broadcast the
  // block draining `shard`'s log. Returns the block actually produced
  // (honest or manipulated). In a sharded pipeline each shard elects its own
  // proposer per round (DESIGN.md §7); shard 0 is the whole mempool at k=1.
  Block create_block(std::uint64_t height, const crypto::Digest256& prev_hash,
                     std::uint32_t shard = 0);

  // --- crash/restart lifecycle (see DESIGN.md "Fault model") ---
  // Crash: wipes all volatile state — pending requests, coverage watches,
  // blame bookkeeping, observed commitments, mirrors, in-flight sync state,
  // and (optionally) the mempool content. The commitment log (and an
  // equivocator's fork) persists as "disk", as do the suspicion epoch and tx
  // nonce counters, so a restarted node can neither reuse a suspicion epoch
  // nor double-commit. The caller (harness) must also mark the node down in
  // the simulator, which suppresses this incarnation's timers.
  void crash(bool wipe_mempool = false);
  // Restart: re-arms the periodic machinery with a fresh phase and re-fetches
  // the content of committed-but-lost transactions from neighbors; missed
  // commitments catch up through the ordinary decode-failure/bulk-sync path.
  // Never fabricates blame: all complaint state died with the crash.
  // The caller must mark the node up in the simulator FIRST.
  void restart();
  bool crashed() const noexcept { return crashed_; }

  // sim::INode
  void on_start() override;
  void on_message(NodeId from, const sim::PayloadPtr& msg) override;

  // Introspection for tests and experiment harnesses.
  NodeId id() const noexcept { return id_; }
  // The shard a transaction id belongs to: content-hash partition
  // txid_short % k (DESIGN.md §7). Always 0 at k=1.
  std::uint32_t shard_of(const TxId& id) const noexcept {
    return static_cast<std::uint32_t>(txid_short(id) % k_);
  }
  std::uint32_t shard_count() const noexcept { return k_; }
  const CommitmentLog& log(std::uint32_t shard = 0) const noexcept {
    return logs_[shard];
  }
  // Committed ids across every shard log.
  std::uint64_t total_committed() const noexcept {
    std::uint64_t n = 0;
    for (const auto& l : logs_) n += l.count();
    return n;
  }
  const AccountabilityRegistry& registry() const noexcept { return registry_; }
  AccountabilityRegistry& registry() noexcept { return registry_; }
  std::size_t mempool_size() const noexcept { return store_.size(); }
  const std::unordered_map<TxId, Transaction, TxIdHash>& mempool() const noexcept {
    return store_;
  }
  // The mechanism counters live in the simulator's metrics registry as
  // per-node labeled cells ("lo.requests_sent{node=i}", ...); this struct is
  // a thin read shim assembled from the registry cells so pre-registry
  // callers keep compiling unchanged.
  NodeStats stats() const noexcept {
    return NodeStats{*c_requests_sent_,     *c_retries_sent_,
                     *c_timeouts_fired_,    *c_suspicions_raised_,
                     *c_suspicions_retracted_, *c_crashes_, *c_restarts_};
  }
  bool has_tx(const TxId& id) const { return store_.count(id) != 0; }
  const Transaction* get_tx(const TxId& id) const;
  // The inspector's view of a creator's committed bundles in one shard (from
  // verified signed bundle responses).
  BundleMap mirror_of(NodeId creator, std::uint32_t shard = 0) const;
  // Approximate extra memory used by accountability state (Sec. 6.5).
  std::size_t accountability_memory_bytes() const noexcept;
  std::uint64_t sketch_decodes() const noexcept { return sketch_decodes_; }
  // Sync exchanges processed that actually moved data (Fig. 10 metric).
  std::uint64_t sync_reconciliations() const noexcept { return sync_recons_; }
  const crypto::PublicKey& public_key() const noexcept {
    return signer_.public_key();
  }
  // Hit/miss counters of the per-node verification cache (perf diagnostics).
  // By-value shim over the registry-bound cells (see crypto::VerifyCache).
  crypto::VerifyCacheStats verify_cache_stats() const noexcept {
    return verify_cache_.stats();
  }
  // The SWIM failure detector, or nullptr when membership is disabled (or
  // the node is currently crashed — the detector is volatile state).
  const membership::SwimDetector* swim() const noexcept { return swim_.get(); }
  // Durable membership incarnation (survives crashes, grows on restart).
  std::uint64_t member_incarnation() const noexcept {
    return member_incarnation_;
  }
  // Request timeouts that membership absolved: the final retry expired but
  // the detector no longer presumed the peer alive, so no accountability
  // suspicion was raised (liveness failure, not protocol misbehavior).
  std::uint64_t suspicions_absolved() const noexcept {
    return *c_suspicions_absolved_;
  }

 private:
  enum class RequestKind : std::uint8_t { kSync, kContent, kBundles };

  struct Pending {
    NodeId peer = 0;
    RequestKind kind = RequestKind::kSync;
    std::uint32_t shard = 0;  // which shard pipeline the request belongs to
    sim::PayloadPtr payload;  // resent verbatim on timeout
    int retries_left = 0;
    int attempt = 0;           // resends so far; drives exponential backoff
    bool got_partial = false;  // peer answered at least partially
    // Our clock when the sync request was sent: everything under it must
    // eventually be covered by the peer's commitments (coverage check).
    std::optional<bloom::BloomClock> snapshot_clock;
  };

  // A peer that received our transactions owes us a commitment covering our
  // snapshot before the deadline — LØ's detection handle on mempool
  // censorship (Sec. 5.2).
  struct CoverageWatch {
    bloom::BloomClock snapshot;
    sim::TimePoint deadline = 0;
    bool reprobed = false;  // one direct re-probe before suspicion
  };

  // --- reconciliation (Stage II) ---
  void schedule_sync();
  void rotate_neighbors();
  void sync_round();
  void send_sync_request(NodeId peer, std::uint32_t shard);
  void handle_sync_request(NodeId from, const SyncRequest& req);
  void handle_sync_response(NodeId from, const SyncResponse& resp);
  void handle_tx_request(NodeId from, const TxRequest& req);
  void handle_tx_bundle(NodeId from, const TxBundleMsg& msg);
  // Resolves sketch elements of `shard` to transactions we hold and ships
  // them to `to`, ordered by our commitment-log position (preserving
  // received order).
  void serve_elements(NodeId to, std::uint32_t shard,
                      const std::vector<std::uint64_t>& elements,
                      std::uint64_t request_id);

  // --- accountability ---
  void observe_header(NodeId from, const CommitmentHeader& header);
  void broadcast_exposure(const ExposureMsg& msg);
  void handle_suspicion(NodeId from, const SuspicionMsg& msg);
  // A header received directly from a peer we reported answers our public
  // challenge; retracts when it covers the complaint snapshot.
  void handle_challenge_response(NodeId from, const CommitmentHeader& h);
  void handle_exposure(NodeId from, const ExposureMsg& msg);
  void suspect_peer(NodeId peer, std::uint32_t shard);
  // Called when `peer` satisfied our complaint about `shard`: drops that
  // shard's snapshot, and once no shard complaint remains lifts our own
  // suspicion and broadcasts a retraction if we had reported it.
  void resolve_suspicion(NodeId peer, std::uint32_t shard);
  // Content-serving acknowledgement (tx/bundle responses are shard-blind):
  // at k=1 clears the complaint outright (the pre-sharding rule); at k>1
  // clears only shard complaints whose snapshot the suspect's latest
  // commitment for that shard dominates, so a shard-censoring peer stays
  // suspected no matter how diligently it serves the other shards.
  void resolve_suspicion_content(NodeId peer);
  void register_coverage(NodeId peer, std::uint32_t shard,
                         const bloom::BloomClock& snapshot);
  void arm_coverage_deadline(NodeId peer, std::uint32_t shard);
  void clear_coverage_if_met(NodeId peer, std::uint32_t shard);

  // --- blocks (Stage III/IV) ---
  void handle_block(NodeId from, const BlockMsg& msg);
  void handle_bundle_request(NodeId from, const BundleRequest& req);
  void handle_bundle_response(NodeId from, const BundleResponse& resp);
  void inspect_known_block(const Block& block);
  bool tx_includeable(const TxId& id) const;

  // --- membership (liveness layer) ---
  // Builds and starts the SWIM detector (fresh volatile state, durable
  // incarnation). Called from on_start() and restart().
  void init_membership();
  // The accountability gate: true when membership still presumes the peer
  // alive (always true with membership disabled). Request timeouts escalate
  // to suspicion only through this gate.
  bool presumed_live(NodeId peer) const;

  // --- plumbing ---
  std::uint64_t register_pending(NodeId peer, RequestKind kind,
                                 sim::PayloadPtr payload);
  void arm_timeout(std::uint64_t request_id);
  sim::Duration backoff_delay(int attempt);
  void request_missing_content();
  void clear_pending(std::uint64_t request_id);
  void flood(const sim::PayloadPtr& msg, NodeId except);
  CommitmentLog& log_for_peer(NodeId peer, std::uint32_t shard);
  std::size_t wire_capacity_for(NodeId peer, const CommitmentLog& log,
                                std::size_t delta_hint) const;
  void admit_transaction(const Transaction& tx, NodeId source);
  // Commits a batch of same-shard ids as one bundle in `shard`'s log,
  // maintaining the equivocation fork.
  void commit_batch(const std::vector<TxId>& ids, NodeId source,
                    std::uint32_t shard);
  std::vector<CommitmentHeader> pick_gossip_headers();
  // True when this node's behavior censors foreign transactions of `shard`
  // (full mempool censorship, or the cross-shard attack of DESIGN.md §7).
  bool censors_shard(std::uint32_t shard) const noexcept {
    if (behavior_.censor_txs) return true;
    return behavior_.censor_shard >= 0 && k_ > 1 &&
           shard == static_cast<std::uint32_t>(behavior_.censor_shard);
  }

  sim::Simulator& sim_;
  NodeId id_;
  LoConfig config_;
  crypto::Signer signer_;
  Hooks* hooks_;
  MaliciousBehavior behavior_;

  std::vector<NodeId> neighbors_;
  std::vector<NodeId> peer_candidates_;
  std::vector<NodeId> member_universe_;
  std::unique_ptr<membership::SwimDetector> swim_;
  // Durable across crash(): a restarted node re-joins with a strictly higher
  // incarnation, overriding any confirm issued against its previous life.
  std::uint64_t member_incarnation_ = 0;
  std::unique_ptr<overlay::BasaltView> view_;
  // Shard count k = LoConfig::mempool_shards (cached; 1 = unsharded).
  std::uint32_t k_ = 1;
  // One append-only commitment log per shard; logs_[0] is the whole mempool
  // at k=1. Per-(peer, shard) maps below are keyed by ps_key(peer, shard)
  // (the AccountabilityRegistry::key packing: shard ids fit in one byte).
  std::vector<CommitmentLog> logs_;
  // Equivocators maintain censored forks (one per shard) shown to half of
  // their peers. Empty unless behavior_.equivocate.
  std::vector<CommitmentLog> fork_logs_;

  // Per-node verification fast path: decompressed peer keys + memoized
  // verdicts. Pure memoization of deterministic functions, so it survives
  // crash() (a restarted node re-deriving a verdict gets the same answer);
  // it never consumes randomness or alters message flow.
  crypto::VerifyCache verify_cache_;

  std::unordered_map<TxId, Transaction, TxIdHash> store_;
  // Per-shard clocks over the transactions whose content we hold and can
  // serve; this is what a peer can actually be expected to commit after an
  // exchange, so coverage snapshots are taken from them (not from the full
  // log, which may reference content still in flight to us).
  std::vector<bloom::BloomClock> content_clocks_;
  std::unordered_set<TxId, TxIdHash> valid_;
  std::unordered_set<TxId, TxIdHash> invalid_;

  AccountabilityRegistry registry_;
  std::unordered_map<std::uint64_t, Pending> pending_;
  // In-flight sync exchanges, keyed ps_key(peer, shard): one per pair.
  std::unordered_set<std::uint64_t> outstanding_sync_;
  // Coverage watches per (peer, shard) — a peer owes a commitment covering
  // the shard snapshot it received our transactions under.
  std::unordered_map<std::uint64_t, CoverageWatch> coverage_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t suspicion_epoch_ = 0;
  // Who currently accuses whom, from this node's point of view: suspect ->
  // reporters whose complaints are unresolved (id_ when we reported).
  // Deliberately global across shards — the public complaint composes.
  std::unordered_map<NodeId, std::unordered_set<NodeId>> suspected_by_;
  // Our per-shard content clock at the moment we reported each suspect,
  // keyed ps_key(suspect, shard); a commitment from the suspect dominating
  // the snapshot retracts that shard's complaint (the public suspicion lifts
  // when the last shard complaint resolves).
  std::unordered_map<std::uint64_t, bloom::BloomClock> suspicion_snapshot_;

  // Signed-bundle mirrors keyed ps_key(creator, shard): bundle seqnos are
  // per shard log, so shards must not share a seqno namespace.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, SignedBundle>>
      mirrors_;
  std::unordered_map<crypto::Digest256, Block, TxIdHash> seen_blocks_;
  std::unordered_set<std::uint64_t> seen_suspicions_;  // key(reporter, epoch)
  std::unordered_set<NodeId> seen_exposures_;
  std::unordered_map<std::uint64_t, std::vector<crypto::Digest256>>
      blocks_awaiting_bundles_;  // keyed ps_key(creator, shard)

  std::uint64_t sketch_decodes_ = 0;
  std::uint64_t sync_recons_ = 0;
  std::uint64_t own_nonce_ = 0;
  std::vector<TxId> stealth_txs_;  // off-channel content (Sec. 5.3)
  // Observability: the simulator's tracer (kTxAdmit, kCommitCreate,
  // kReconcileRound, blame and block events) plus registry cell handles for
  // the mechanism counters (stable addresses; see obs::Registry::counter).
  obs::Tracer* tracer_;
  // Hot accountability counters with per-shard attribution: one cell per
  // shard, labeled {node} at k=1 (ids unchanged from the unsharded layout)
  // and {node, shard} at k>1 so snapshots and loscope reports roll up per
  // shard pipeline. Single-writer like every per-node cell (one node = one
  // shard worker under the parallel engine).
  std::vector<std::uint64_t*> c_commits_;
  std::vector<std::uint64_t*> c_sync_rounds_;
  std::vector<std::uint64_t*> c_suspicions_;
  std::uint64_t* c_requests_sent_;
  std::uint64_t* c_retries_sent_;
  std::uint64_t* c_timeouts_fired_;
  std::uint64_t* c_suspicions_raised_;
  std::uint64_t* c_suspicions_retracted_;
  std::uint64_t* c_crashes_;
  std::uint64_t* c_restarts_;
  std::uint64_t* c_member_suspects_;
  std::uint64_t* c_member_confirms_;
  std::uint64_t* c_suspicions_absolved_;
  bool crashed_ = false;
};

}  // namespace lo::core
