// Block inspection (Sec. 4.3 step 5, Sec. 5.2 "Countering Attacks during
// Block Building").
//
// Inspection compares a block against the creator's committed bundles that
// the inspector knows. It is separate from block validation and does not
// gate chain inclusion; a violation yields transferable evidence against the
// creator. With partial knowledge of the creator's bundles the verdict can be
// kNeedBundles, which triggers a BundleRequest to the creator — a creator
// that never substantiates its block ends up suspected (Sec. 5.2).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/block.hpp"
#include "core/types.hpp"

namespace lo::core {

enum class BlockVerdict : std::uint8_t {
  kOk,           // canonical with respect to everything the inspector knows
  kReordered,    // segment order deviates from the canonical shuffle
  kInjected,     // contains a tx not committed in the referenced bundle
  kCensored,     // omits a tx the inspector knows to be includeable
  kBadStructure, // non-monotonic segment seqnos / seqno beyond commitment
  kNeedBundles,  // inspector lacks creator bundles for some segments
};

const char* to_string(BlockVerdict v) noexcept;

struct InspectionResult {
  BlockVerdict verdict = BlockVerdict::kOk;
  std::uint64_t offending_seqno = 0;  // bundle/segment the verdict points at
  TxId offending_tx{};                // for injection/censorship verdicts
  std::vector<std::uint64_t> missing_bundles;  // for kNeedBundles
};

// The inspector's copy of a creator's bundle history: seqno -> committed ids
// in commitment order (as carried by commitment delta messages).
using BundleMap = std::unordered_map<std::uint64_t, std::vector<TxId>>;

// `known_includeable`: returns true if the inspector can prove the tx should
// have been included (it holds valid content with a sufficient fee). Txs for
// which the inspector lacks content are never flagged as censored.
InspectionResult inspect_block(
    const Block& block, const BundleMap& creator_bundles,
    const std::function<bool(const TxId&)>& known_includeable);

}  // namespace lo::core
