// Signed mempool commitments (Sec. 4.2).
//
// A commitment binds a miner to its entire append-only transaction history at
// a point in time:
//   - seqno:      incremented on every append batch ("incremental counter for
//                 appropriate comparison", Sec. 4.3),
//   - count:      total committed transaction ids,
//   - chain_hash: hash chain over the ids in commitment order (binds the
//                 *order*, not just the set),
//   - clock:      Bloom Clock over the set (fast discrepancy pre-check),
//   - sketch:     Minisketch over the set (set reconciliation and the
//                 equivocation consistency check of Sec. 5.2),
// all signed by the miner. Any two signed commitments from the same miner can
// be checked for consistency by a third party; an inconsistent pair is a
// self-contained, transferable proof of misbehavior.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bloomclock/bloom_clock.hpp"
#include "core/types.hpp"
#include "crypto/keys.hpp"
#include "minisketch/sketch.hpp"
#include "util/serde.hpp"

namespace lo::crypto {
class VerifyCache;
}

namespace lo::core {

struct CommitmentParams {
  unsigned sketch_bits = 32;
  // Maximum (local) sketch capacity; wire commitments carry a truncated
  // prefix sized to the estimated difference (PinSketch prefix property).
  std::size_t sketch_capacity = 128;  // paper: 1000-byte sketch, <=100 diffs
  std::size_t clock_cells = 32;       // paper: 32 cells, 68 bytes
  unsigned clock_hashes = 1;
  // Shard count of the sharded commitment pipeline (LoConfig::mempool_shards,
  // folded in by LoNode). Headers carry their shard id on the wire — and
  // under the signature — only when shards > 1, so single-shard deployments
  // keep the exact pre-sharding byte format and digests.
  std::uint32_t shards = 1;

  bool operator==(const CommitmentParams&) const = default;
};

struct CommitmentHeader {
  NodeId node = 0;
  std::uint64_t seqno = 0;
  std::uint64_t count = 0;
  // Which shard's log this commitment covers, and the pipeline's shard count
  // (from CommitmentParams). The shard id is signed and serialized only when
  // shards > 1: commitments cannot be replayed across shards, yet the k = 1
  // wire format is byte-identical to the unsharded protocol.
  std::uint32_t shard = 0;
  std::uint32_t shards = 1;
  crypto::Digest256 chain_hash{};
  bloom::BloomClock clock;
  sketch::Sketch sketch;
  crypto::PublicKey key{};
  crypto::Signature sig{};

  CommitmentHeader()
      : clock(CommitmentParams{}.clock_cells, CommitmentParams{}.clock_hashes),
        sketch(CommitmentParams{}.sketch_bits, CommitmentParams{}.sketch_capacity) {}
  CommitmentHeader(const CommitmentParams& p)
      : shards(p.shards == 0 ? 1 : p.shards),
        clock(p.clock_cells, p.clock_hashes),
        sketch(p.sketch_bits, p.sketch_capacity) {}

  // Everything covered by the miner signature.
  std::vector<std::uint8_t> signing_bytes() const;
  // `cache` (optional) memoizes key decompression and duplicate
  // verifications; the result is identical with or without it.
  bool verify(crypto::SignatureMode mode,
              crypto::VerifyCache* cache = nullptr) const;

  std::size_t wire_size() const noexcept;
  std::vector<std::uint8_t> serialize() const;
  static std::optional<CommitmentHeader> deserialize(
      std::span<const std::uint8_t> data, const CommitmentParams& params);
  // Stream variants used when a header is embedded inside a larger message;
  // the wire format is self-describing (clock cells / sketch capacity carry
  // their own sizes), so read() consumes exactly wire_size() bytes.
  void write(util::Writer& w) const;
  static std::optional<CommitmentHeader> read(util::Reader& r,
                                              const CommitmentParams& params);
};

enum class Consistency : std::uint8_t {
  kConsistent,    // newer extends older (append-only growth holds)
  kEquivocation,  // provably conflicting pair — transferable evidence
  kInconclusive,  // sketch difference exceeded capacity; cannot judge locally
};

// Checks whether two signed commitments from the same node can belong to one
// append-only history. Callers must have verified both signatures and that
// both headers carry the same node/key. Order of arguments does not matter.
Consistency check_consistency(const CommitmentHeader& a,
                              const CommitmentHeader& b);

// Cheap first-stage check using only counters and Bloom Clocks (Sec. 4.2:
// "The process starts with a bloom filter comparison, detecting
// inconsistencies between sets; later, nodes construct a Minisketch...").
// For an honest grow-only history the newer clock dominates the older and
// the L1 distance equals hashes * count-delta exactly, so:
//  - returns kConsistent when the clocks prove a pure extension;
//  - returns kInconclusive when they flag a problem — callers escalate to
//    the decode-based check_consistency to obtain transferable evidence.
Consistency check_consistency_clocks(const CommitmentHeader& a,
                                     const CommitmentHeader& b);

}  // namespace lo::core
