#include "core/block.hpp"

#include <algorithm>

#include "crypto/verify_cache.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace lo::core {

std::vector<std::uint8_t> Block::signing_bytes() const {
  util::Writer w;
  w.str("lo-block");
  w.u32(creator);
  // As with commitments, the shard id is signed only in sharded deployments
  // so k = 1 block signatures match the unsharded protocol byte for byte.
  if (shards > 1) {
    w.str("shard");
    w.u32(shard);
  }
  w.u64(height);
  w.fixed(prev_hash);
  w.u64(commit_seqno);
  w.u32(static_cast<std::uint32_t>(segments.size()));
  for (const auto& seg : segments) {
    w.u64(seg.seqno);
    w.u32(static_cast<std::uint32_t>(seg.txids.size()));
    for (const auto& id : seg.txids) w.fixed(id);
  }
  return w.take_u8();
}

bool Block::verify(crypto::SignatureMode mode, crypto::VerifyCache* cache) const {
  auto msg = signing_bytes();
  const std::span<const std::uint8_t> m(msg.data(), msg.size());
  if (cache) return cache->verify(mode, key, m, sig);
  return crypto::Signer::verify(mode, key, m, sig);
}

crypto::Digest256 Block::hash() const {
  auto bytes = signing_bytes();
  crypto::Sha256 h;
  h.update(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  h.update(std::span<const std::uint8_t>(sig.data(), sig.size()));
  return h.finalize();
}

std::size_t Block::tx_count() const noexcept {
  std::size_t n = 0;
  for (const auto& s : segments) n += s.txids.size();
  return n;
}

std::vector<TxId> Block::flat_txids() const {
  std::vector<TxId> out;
  out.reserve(tx_count());
  for (const auto& s : segments) {
    out.insert(out.end(), s.txids.begin(), s.txids.end());
  }
  return out;
}

std::size_t Block::wire_size() const noexcept {
  // header fields + [shard] + key + sig
  std::size_t sz = 4 + (shards > 1 ? 4 : 0) + 8 + 32 + 8 + 4 + 32 + 64;
  for (const auto& s : segments) sz += 8 + 4 + 32 * s.txids.size();
  return sz;
}

void Block::write(util::Writer& w) const {
  w.u32(creator);
  if (shards > 1) w.u32(shard);
  w.u64(height);
  w.fixed(prev_hash);
  w.u64(commit_seqno);
  w.u32(static_cast<std::uint32_t>(segments.size()));
  for (const auto& seg : segments) {
    w.u64(seg.seqno);
    w.u32(static_cast<std::uint32_t>(seg.txids.size()));
    for (const auto& id : seg.txids) w.fixed(id);
  }
  w.fixed(key);
  w.fixed(sig);
}

std::vector<std::uint8_t> Block::serialize() const {
  util::Writer w;
  write(w);
  return w.take_u8();
}

std::optional<Block> Block::read(util::Reader& r, std::uint32_t shards) {
  try {
    Block b;
    b.shards = shards == 0 ? 1 : shards;
    b.creator = r.u32();
    if (shards > 1) {
      b.shard = r.u32();
      if (b.shard >= shards) return std::nullopt;
    }
    b.height = r.u64();
    b.prev_hash = r.fixed<32>();
    b.commit_seqno = r.u64();
    const std::uint32_t nseg = r.u32();
    // Counts are attacker-controlled: clamp every reserve() by the bytes
    // actually left in the buffer (a segment needs >= 12 bytes, a txid 32),
    // otherwise a hostile 0xFFFFFFFF prefix forces a multi-GB allocation
    // before the underrun is ever noticed.
    b.segments.reserve(std::min<std::size_t>(nseg, r.remaining() / 12));
    for (std::uint32_t i = 0; i < nseg; ++i) {
      Segment seg;
      seg.seqno = r.u64();
      const std::uint32_t ntx = r.u32();
      seg.txids.reserve(std::min<std::size_t>(ntx, r.remaining() / 32));
      for (std::uint32_t j = 0; j < ntx; ++j) seg.txids.push_back(r.fixed<32>());
      b.segments.push_back(std::move(seg));
    }
    b.key = r.fixed<32>();
    b.sig = r.fixed<64>();
    return b;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::optional<Block> Block::deserialize(std::span<const std::uint8_t> data,
                                        std::uint32_t shards) {
  util::Reader r(data);
  auto b = read(r, shards);
  if (!b || !r.done()) return std::nullopt;
  return b;
}

std::vector<TxId> canonical_shuffle(std::vector<TxId> txids,
                                    const crypto::Digest256& prev_hash,
                                    std::uint64_t seqno) {
  crypto::Sha256 h;
  h.update("lo-order-seed");
  h.update(std::span<const std::uint8_t>(prev_hash.data(), prev_hash.size()));
  std::uint8_t seq_le[8];
  for (int i = 0; i < 8; ++i) seq_le[i] = static_cast<std::uint8_t>(seqno >> (8 * i));
  h.update(std::span<const std::uint8_t>(seq_le, 8));
  const auto digest = h.finalize();
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) seed = (seed << 8) | digest[static_cast<std::size_t>(i)];
  util::Rng rng(seed);
  rng.shuffle(txids);
  return txids;
}

std::vector<Block::Segment> build_canonical_segments(
    const CommitmentLog& log, const crypto::Digest256& prev_hash,
    const std::function<bool(const TxId&)>& include) {
  std::vector<Block::Segment> out;
  for (const auto& bundle : log.bundles()) {
    auto shuffled = canonical_shuffle(bundle.txids, prev_hash, bundle.seqno);
    Block::Segment seg;
    seg.seqno = bundle.seqno;
    for (const auto& id : shuffled) {
      if (!include || include(id)) seg.txids.push_back(id);
    }
    if (!seg.txids.empty()) out.push_back(std::move(seg));
  }
  return out;
}

Block build_block(const CommitmentLog& log, const crypto::Signer& signer,
                  std::uint64_t height, const crypto::Digest256& prev_hash,
                  const std::function<bool(const TxId&)>& include) {
  Block b;
  b.creator = log.self();
  b.shard = log.shard();
  b.shards = log.params().shards == 0 ? 1 : log.params().shards;
  b.height = height;
  b.prev_hash = prev_hash;
  b.commit_seqno = log.seqno();
  b.segments = build_canonical_segments(log, prev_hash, include);
  b.key = signer.public_key();
  auto msg = b.signing_bytes();
  b.sig = signer.sign(std::span<const std::uint8_t>(msg.data(), msg.size()));
  return b;
}

}  // namespace lo::core
