#include "core/accountability.hpp"

namespace lo::core {

std::optional<EquivocationEvidence> AccountabilityRegistry::observe_commitment(
    const CommitmentHeader& header, bool* used_decode) {
  if (used_decode != nullptr) *used_decode = false;
  if (verify_signatures_ && !header.verify(mode_, verify_cache_)) return std::nullopt;

  // Commitments are tracked per (node, shard): shard logs are disjoint
  // append-only histories, so only same-shard pairs can conflict. Exposure,
  // in contrast, composes globally — see expose().
  auto it = latest_.find(key(header.node, header.shard));
  if (it == latest_.end()) {
    latest_.emplace(key(header.node, header.shard), header);
    return std::nullopt;
  }
  CommitmentHeader& stored = it->second;

  // Key substitution is itself an inconsistency, but without both signatures
  // binding the same key it is not self-contained evidence; ignore the
  // imposter header (the signature check above already gates validity).
  if (!(stored.key == header.key)) return std::nullopt;

  Consistency c = two_stage_checks_ ? check_consistency_clocks(stored, header)
                                    : Consistency::kInconclusive;
  if (c != Consistency::kConsistent) {
    // The cheap stage flagged a discrepancy (or is disabled): escalate to the
    // sketch decode, which either clears it or yields transferable evidence.
    if (used_decode != nullptr) *used_decode = true;
    c = check_consistency(stored, header);
  }
  if (c == Consistency::kEquivocation) {
    EquivocationEvidence ev;
    ev.accused = header.node;
    ev.first = stored;
    ev.second = header;
    expose(header.node);
    return ev;
  }
  // Keep the freshest commitment; on inconclusive keep both endpoints by
  // retaining the newer one (older evidence value decays as history grows).
  if (header.seqno > stored.seqno) stored = header;
  return std::nullopt;
}

const CommitmentHeader* AccountabilityRegistry::latest(
    NodeId node, std::uint32_t shard) const {
  auto it = latest_.find(key(node, shard));
  return it == latest_.end() ? nullptr : &it->second;
}

std::size_t AccountabilityRegistry::memory_bytes() const noexcept {
  std::size_t sum = 0;
  // lolint:allow(unordered-iter) reason=commutative byte-count fold; the sum is order-independent and feeds only local memory metrics
  for (const auto& [id, h] : latest_) {
    sum += sizeof(id) + h.wire_size();
  }
  sum += suspected_.size() * sizeof(NodeId);
  sum += exposed_.size() * sizeof(NodeId);
  return sum;
}

}  // namespace lo::core
