#include "core/commitment_log.hpp"

namespace lo::core {

CommitmentLog::CommitmentLog(NodeId self, const CommitmentParams& params,
                             std::uint32_t shard)
    : self_(self),
      params_(params),
      shard_(shard),
      clock_(params.clock_cells, params.clock_hashes),
      sketch_(params.sketch_bits, params.sketch_capacity) {}

std::vector<TxId> CommitmentLog::append(std::span<const TxId> txids,
                                        NodeId source) {
  std::vector<TxId> appended;
  appended.reserve(txids.size());
  for (const auto& id : txids) {
    if (!members_.insert(id).second) continue;
    order_.push_back(id);
    positions_.emplace(id, order_.size() - 1);
    const std::uint64_t raw = txid_short(id);
    short_index_.emplace(raw, id);
    clock_.add(raw);
    // add() returns the mapped field element: one map_nonzero per append.
    elem_index_.emplace(sketch_.add(raw), id);
    // Chain hash binds position: h_n = SHA-256(h_{n-1} || txid).
    crypto::Sha256 h;
    h.update(std::span<const std::uint8_t>(chain_hash_.data(), chain_hash_.size()));
    h.update(std::span<const std::uint8_t>(id.data(), id.size()));
    chain_hash_ = h.finalize();
    appended.push_back(id);
  }
  if (!appended.empty()) {
    ++seqno_;
    bundles_.push_back(Bundle{seqno_, source, appended});
  }
  return appended;
}

CommitmentHeader CommitmentLog::make_header(const crypto::Signer& signer,
                                            std::size_t wire_capacity) const {
  CommitmentHeader h(params_);
  h.node = self_;
  h.shard = shard_;
  h.seqno = seqno_;
  h.count = order_.size();
  h.chain_hash = chain_hash_;
  h.clock = clock_;
  h.sketch = wire_capacity >= sketch_.capacity() ? sketch_
                                                 : sketch_.truncated(wire_capacity);
  h.key = signer.public_key();
  auto msg = h.signing_bytes();
  h.sig = signer.sign(std::span<const std::uint8_t>(msg.data(), msg.size()));
  return h;
}

std::optional<TxId> CommitmentLog::resolve_short(std::uint64_t raw) const {
  auto it = short_index_.find(raw);
  if (it == short_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<TxId> CommitmentLog::resolve_element(std::uint64_t element) const {
  auto it = elem_index_.find(element);
  if (it == elem_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::size_t> CommitmentLog::position_of(const TxId& id) const {
  auto it = positions_.find(id);
  if (it == positions_.end()) return std::nullopt;
  return it->second;
}

std::vector<TxId> CommitmentLog::ids_after(std::size_t from_position) const {
  if (from_position >= order_.size()) return {};
  return {order_.begin() + static_cast<std::ptrdiff_t>(from_position),
          order_.end()};
}

const CommitmentLog::Bundle* CommitmentLog::bundle_by_seqno(
    std::uint64_t seqno) const {
  if (seqno == 0 || seqno > bundles_.size()) return nullptr;
  // Bundles are created with consecutive seqnos starting at 1.
  const Bundle& b = bundles_[seqno - 1];
  return b.seqno == seqno ? &b : nullptr;
}

std::size_t CommitmentLog::memory_bytes() const noexcept {
  std::size_t sum = order_.size() * sizeof(TxId);
  sum += short_index_.size() * (sizeof(std::uint64_t) + sizeof(TxId));
  sum += elem_index_.size() * (sizeof(std::uint64_t) + sizeof(TxId));
  sum += positions_.size() * (sizeof(TxId) + sizeof(std::size_t));
  sum += members_.size() * sizeof(TxId);
  for (const auto& b : bundles_) {
    sum += sizeof(Bundle) + b.txids.size() * sizeof(TxId);
  }
  sum += clock_.serialized_size();
  sum += sketch_.serialized_size();
  return sum;
}

}  // namespace lo::core
