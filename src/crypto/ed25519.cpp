#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/sha512.hpp"

namespace lo::crypto {
namespace detail {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (1ULL << 51) - 1;

// Little-endian bytes of L = 2^252 + 27742317777372353535851937790883648493.
constexpr std::uint8_t kLBytes[32] = {
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
    0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};

constexpr u64 kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                       0x1000000000000000ULL};

}  // namespace

// ---------------------------------------------------------------- field ----

Fe fe_zero() noexcept { return Fe{}; }

Fe fe_one() noexcept {
  Fe r;
  r.v[0] = 1;
  return r;
}

Fe fe_add(const Fe& a, const Fe& b) noexcept {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

namespace {
// Carry-propagates so each limb is < 2^52 (top carry wraps with factor 19).
Fe fe_carry(const Fe& a) noexcept {
  Fe r = a;
  u64 c;
  for (int i = 0; i < 4; ++i) {
    c = r.v[i] >> 51;
    r.v[i] &= kMask51;
    r.v[i + 1] += c;
  }
  c = r.v[4] >> 51;
  r.v[4] &= kMask51;
  r.v[0] += 19 * c;
  // One more pass in case limb 0 overflowed 51 bits.
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}
}  // namespace

Fe fe_sub(const Fe& a, const Fe& b) noexcept {
  // a + 2p - b keeps limbs non-negative for any carried inputs.
  Fe r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDAULL - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFEULL - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFEULL - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFEULL - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFEULL - b.v[4];
  return fe_carry(r);
}

Fe fe_neg(const Fe& a) noexcept { return fe_sub(fe_zero(), a); }

Fe fe_mul(const Fe& f, const Fe& g) noexcept {
  const Fe a = fe_carry(f);
  const Fe b = fe_carry(g);
  const u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = 19 * b1, b2_19 = 19 * b2, b3_19 = 19 * b3, b4_19 = 19 * b4;

  u128 r0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 r1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 r2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 r3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 r4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe out;
  u128 c;
  c = r0 >> 51; out.v[0] = (u64)r0 & kMask51; r1 += c;
  c = r1 >> 51; out.v[1] = (u64)r1 & kMask51; r2 += c;
  c = r2 >> 51; out.v[2] = (u64)r2 & kMask51; r3 += c;
  c = r3 >> 51; out.v[3] = (u64)r3 & kMask51; r4 += c;
  c = r4 >> 51; out.v[4] = (u64)r4 & kMask51;
  out.v[0] += 19 * (u64)c;
  const u64 c2 = out.v[0] >> 51;
  out.v[0] &= kMask51;
  out.v[1] += c2;
  return out;
}

Fe fe_sq(const Fe& a) noexcept { return fe_mul(a, a); }

Fe fe_pow(const Fe& a, const std::array<std::uint8_t, 32>& e_le) noexcept {
  Fe result = fe_one();
  // Left-to-right square-and-multiply over 256 exponent bits.
  for (int i = 255; i >= 0; --i) {
    result = fe_sq(result);
    if ((e_le[i / 8] >> (i % 8)) & 1) result = fe_mul(result, a);
  }
  return result;
}

Fe fe_invert(const Fe& a) noexcept {
  // p - 2 = 2^255 - 21.
  std::array<std::uint8_t, 32> e;
  e.fill(0xff);
  e[0] = 0xeb;
  e[31] = 0x7f;
  return fe_pow(a, e);
}

Fe fe_pow2523(const Fe& a) noexcept {
  // (p - 5) / 8 = 2^252 - 3.
  std::array<std::uint8_t, 32> e;
  e.fill(0xff);
  e[0] = 0xfd;
  e[31] = 0x0f;
  return fe_pow(a, e);
}

Fe fe_from_bytes(const std::array<std::uint8_t, 32>& b) noexcept {
  auto load64 = [&](int off) {
    u64 v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[off + i];
    return v;
  };
  Fe r;
  r.v[0] = load64(0) & kMask51;
  r.v[1] = (load64(6) >> 3) & kMask51;
  r.v[2] = (load64(12) >> 6) & kMask51;
  r.v[3] = (load64(19) >> 1) & kMask51;
  r.v[4] = (load64(24) >> 12) & kMask51;
  return r;
}

std::array<std::uint8_t, 32> fe_to_bytes(const Fe& a) noexcept {
  Fe t = fe_carry(fe_carry(a));
  // Subtract p if t >= p (limbs now < 2^52; canonical means < p).
  // Add 19 and check overflow of bit 255 to decide; standard trick:
  u64 q = (t.v[0] + 19) >> 51;
  q = (t.v[1] + q) >> 51;
  q = (t.v[2] + q) >> 51;
  q = (t.v[3] + q) >> 51;
  q = (t.v[4] + q) >> 51;
  t.v[0] += 19 * q;
  u64 c;
  c = t.v[0] >> 51; t.v[0] &= kMask51; t.v[1] += c;
  c = t.v[1] >> 51; t.v[1] &= kMask51; t.v[2] += c;
  c = t.v[2] >> 51; t.v[2] &= kMask51; t.v[3] += c;
  c = t.v[3] >> 51; t.v[3] &= kMask51; t.v[4] += c;
  t.v[4] &= kMask51;  // drop bit 255 (the subtraction of p)

  std::array<std::uint8_t, 32> out{};
  u64 limbs[4];
  limbs[0] = t.v[0] | (t.v[1] << 51);
  limbs[1] = (t.v[1] >> 13) | (t.v[2] << 38);
  limbs[2] = (t.v[2] >> 26) | (t.v[3] << 25);
  limbs[3] = (t.v[3] >> 39) | (t.v[4] << 12);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<std::uint8_t>(limbs[i] >> (8 * j));
    }
  }
  return out;
}

bool fe_is_zero(const Fe& a) noexcept {
  auto b = fe_to_bytes(a);
  std::uint8_t acc = 0;
  for (auto x : b) acc |= x;
  return acc == 0;
}

bool fe_is_negative(const Fe& a) noexcept { return fe_to_bytes(a)[0] & 1; }

bool fe_eq(const Fe& a, const Fe& b) noexcept {
  return fe_to_bytes(a) == fe_to_bytes(b);
}

// ---------------------------------------------------------------- curve ----

namespace {

struct CurveConstants {
  Fe d;        // -121665/121666
  Fe d2;       // 2*d
  Fe sqrtm1;   // sqrt(-1) = 2^((p-1)/4)
  Ge base;     // standard base point (y = 4/5, x even)
};

Fe fe_from_u64(u64 x) noexcept {
  Fe r;
  r.v[0] = x & kMask51;
  r.v[1] = x >> 51;
  return r;
}

const CurveConstants& constants();

// Decompression, parameterized so constants() can use it during init.
std::optional<Ge> ge_from_bytes_impl(const std::array<std::uint8_t, 32>& b,
                                     const Fe& d, const Fe& sqrtm1) noexcept {
  std::array<std::uint8_t, 32> yb = b;
  const bool sign = (yb[31] & 0x80) != 0;
  yb[31] &= 0x7f;
  const Fe y = fe_from_bytes(yb);
  // Reject non-canonical y (>= p). fe_from_bytes reduces silently, so compare.
  if (fe_to_bytes(y) != yb) return std::nullopt;

  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());           // y^2 - 1
  const Fe v = fe_add(fe_mul(d, y2), fe_one());  // d*y^2 + 1

  // x = u v^3 (u v^7)^((p-5)/8)
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow2523(fe_mul(u, v7)));

  const Fe vxx = fe_mul(v, fe_sq(x));
  if (!fe_eq(vxx, u)) {
    if (fe_eq(vxx, fe_neg(u))) {
      x = fe_mul(x, sqrtm1);
    } else {
      return std::nullopt;
    }
  }
  if (fe_is_zero(x) && sign) return std::nullopt;
  if (fe_is_negative(x) != sign) x = fe_neg(x);

  Ge p;
  p.X = x;
  p.Y = y;
  p.Z = fe_one();
  p.T = fe_mul(x, y);
  return p;
}

const CurveConstants& constants() {
  static const CurveConstants c = [] {
    CurveConstants cc;
    // d = -121665/121666 mod p
    const Fe num = fe_neg(fe_from_u64(121665));
    const Fe den = fe_from_u64(121666);
    cc.d = fe_mul(num, fe_invert(den));
    cc.d2 = fe_add(cc.d, cc.d);
    // sqrt(-1) = 2^((p-1)/4), (p-1)/4 = 2^253 - 5.
    std::array<std::uint8_t, 32> e;
    e.fill(0xff);
    e[0] = 0xfb;
    e[31] = 0x1f;
    cc.sqrtm1 = fe_pow(fe_from_u64(2), e);
    // Base point: y = 4/5, x chosen with even sign bit.
    const Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    auto enc = fe_to_bytes(y);  // sign bit 0 => even x
    auto base = ge_from_bytes_impl(enc, cc.d, cc.sqrtm1);
    cc.base = *base;  // must exist; checked by unit tests
    return cc;
  }();
  return c;
}

}  // namespace

Ge ge_identity() noexcept {
  Ge p;
  p.X = fe_zero();
  p.Y = fe_one();
  p.Z = fe_one();
  p.T = fe_zero();
  return p;
}

Ge ge_add(const Ge& p, const Ge& q) noexcept {
  // add-2008-hwcd-3 for a = -1 with k = 2d.
  const Fe a = fe_mul(fe_sub(p.Y, p.X), fe_sub(q.Y, q.X));
  const Fe b = fe_mul(fe_add(p.Y, p.X), fe_add(q.Y, q.X));
  const Fe c = fe_mul(fe_mul(p.T, constants().d2), q.T);
  const Fe d = fe_add(fe_mul(p.Z, q.Z), fe_mul(p.Z, q.Z));
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  Ge r;
  r.X = fe_mul(e, f);
  r.Y = fe_mul(g, h);
  r.T = fe_mul(e, h);
  r.Z = fe_mul(f, g);
  return r;
}

Ge ge_double(const Ge& p) noexcept {
  // dbl-2008-hwcd for a = -1.
  const Fe a = fe_sq(p.X);
  const Fe b = fe_sq(p.Y);
  const Fe zz = fe_sq(p.Z);
  const Fe c = fe_add(zz, zz);
  const Fe d = fe_neg(a);
  const Fe e = fe_sub(fe_sub(fe_sq(fe_add(p.X, p.Y)), a), b);
  const Fe g = fe_add(d, b);
  const Fe f = fe_sub(g, c);
  const Fe h = fe_sub(d, b);
  Ge r;
  r.X = fe_mul(e, f);
  r.Y = fe_mul(g, h);
  r.T = fe_mul(e, h);
  r.Z = fe_mul(f, g);
  return r;
}

Ge ge_neg(const Ge& p) noexcept {
  Ge r = p;
  r.X = fe_neg(p.X);
  r.T = fe_neg(p.T);
  return r;
}

Ge ge_scalarmult(const Ge& p, const std::array<std::uint8_t, 32>& scalar) noexcept {
  Ge r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    r = ge_double(r);
    if ((scalar[i / 8] >> (i % 8)) & 1) r = ge_add(r, p);
  }
  return r;
}

Ge ge_scalarmult_base(const std::array<std::uint8_t, 32>& scalar) noexcept {
  return ge_scalarmult(constants().base, scalar);
}

std::array<std::uint8_t, 32> ge_to_bytes(const Ge& p) noexcept {
  const Fe zinv = fe_invert(p.Z);
  const Fe x = fe_mul(p.X, zinv);
  const Fe y = fe_mul(p.Y, zinv);
  auto out = fe_to_bytes(y);
  if (fe_is_negative(x)) out[31] |= 0x80;
  return out;
}

std::optional<Ge> ge_from_bytes(const std::array<std::uint8_t, 32>& b) noexcept {
  const auto& c = constants();
  return ge_from_bytes_impl(b, c.d, c.sqrtm1);
}

bool ge_eq(const Ge& p, const Ge& q) noexcept {
  // Cross-multiply to avoid inversions: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
  return fe_eq(fe_mul(p.X, q.Z), fe_mul(q.X, p.Z)) &&
         fe_eq(fe_mul(p.Y, q.Z), fe_mul(q.Y, p.Z));
}

// -------------------------------------------------------------- scalars ----

namespace {

bool sc_geq(const u64 a[4], const u64 b[4]) noexcept {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;  // equal
}

void sc_sub_inplace(u64 a[4], const u64 b[4]) noexcept {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 bi = b[i] + borrow;
    // borrow propagation: b[i] + borrow can wrap only if b[i] == ~0 && borrow,
    // in which case subtracting it is subtracting 0 with borrow carried on.
    const bool wrap = (bi < b[i]);
    const u64 before = a[i];
    a[i] -= bi;
    borrow = (wrap || a[i] > before) ? 1 : 0;
  }
}

}  // namespace

Sc sc_zero() noexcept { return Sc{}; }

Sc sc_reduce(std::span<const std::uint8_t> bytes_le) noexcept {
  // Horner over bits, MSB first: r = 2r + bit (mod L). Keeps r < L throughout
  // (2r + 1 < 2L so at most one subtraction per step). Slow but obviously
  // correct; scalar throughput is measured in bench_crypto.
  Sc r{};
  const int nbits = static_cast<int>(bytes_le.size()) * 8;
  for (int i = nbits - 1; i >= 0; --i) {
    // r <<= 1
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u64 nv = (r.v[j] << 1) | carry;
      carry = r.v[j] >> 63;
      r.v[j] = nv;
    }
    // += bit
    if ((bytes_le[i / 8] >> (i % 8)) & 1) {
      int j = 0;
      while (j < 4 && ++r.v[j] == 0) ++j;
    }
    if (sc_geq(r.v, kL)) sc_sub_inplace(r.v, kL);
  }
  return r;
}

Sc sc_add(const Sc& a, const Sc& b) noexcept {
  Sc r;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 s1 = a.v[i] + carry;
    const bool c1 = s1 < a.v[i];
    const u64 s2 = s1 + b.v[i];
    const bool c2 = s2 < s1;
    r.v[i] = s2;
    carry = (c1 || c2) ? 1 : 0;
  }
  // a, b < L < 2^253 so no overflow past limb 3; reduce once.
  if (sc_geq(r.v, kL)) sc_sub_inplace(r.v, kL);
  return r;
}

Sc sc_mul(const Sc& a, const Sc& b) noexcept {
  // Schoolbook 4x4 -> 8 limbs, then byte-serialize and reduce.
  u64 prod[8] = {0};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = (u128)a.v[i] * b.v[j] + prod[i + j] + carry;
      prod[i + j] = (u64)cur;
      carry = (u64)(cur >> 64);
    }
    prod[i + 4] += carry;
  }
  std::uint8_t bytes[64];
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      bytes[8 * i + j] = static_cast<std::uint8_t>(prod[i] >> (8 * j));
    }
  }
  return sc_reduce(std::span<const std::uint8_t>(bytes, 64));
}

std::array<std::uint8_t, 32> sc_to_bytes(const Sc& a) noexcept {
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<std::uint8_t>(a.v[i] >> (8 * j));
    }
  }
  return out;
}

bool sc_is_canonical(const std::array<std::uint8_t, 32>& b) noexcept {
  // Lexicographic compare against L, big-endian-wise from the top byte.
  for (int i = 31; i >= 0; --i) {
    if (b[i] < kLBytes[i]) return true;
    if (b[i] > kLBytes[i]) return false;
  }
  return false;  // equal to L is non-canonical
}

}  // namespace detail

// ------------------------------------------------------------ high level ----

namespace {

using namespace detail;

struct ExpandedKey {
  std::array<std::uint8_t, 32> a_clamped;  // scalar bytes for A = a*B
  std::array<std::uint8_t, 32> prefix;
};

ExpandedKey expand(const SecretSeed& seed) {
  const Digest512 h = sha512(std::span<const std::uint8_t>(seed.data(), seed.size()));
  ExpandedKey k;
  std::memcpy(k.a_clamped.data(), h.data(), 32);
  std::memcpy(k.prefix.data(), h.data() + 32, 32);
  k.a_clamped[0] &= 248;
  k.a_clamped[31] &= 127;
  k.a_clamped[31] |= 64;
  return k;
}

}  // namespace

PublicKey ed25519_public_key(const SecretSeed& seed) {
  const ExpandedKey k = expand(seed);
  return ge_to_bytes(ge_scalarmult_base(k.a_clamped));
}

Signature ed25519_sign(const SecretSeed& seed, std::span<const std::uint8_t> msg) {
  const ExpandedKey k = expand(seed);
  const PublicKey a_enc = ge_to_bytes(ge_scalarmult_base(k.a_clamped));

  Sha512 h1;
  h1.update(std::span<const std::uint8_t>(k.prefix.data(), 32));
  h1.update(msg);
  const Sc r = sc_reduce(h1.finalize());

  const auto r_enc = ge_to_bytes(ge_scalarmult_base(sc_to_bytes(r)));

  Sha512 h2;
  h2.update(std::span<const std::uint8_t>(r_enc.data(), 32));
  h2.update(std::span<const std::uint8_t>(a_enc.data(), 32));
  h2.update(msg);
  const Sc kchal = sc_reduce(h2.finalize());

  const Sc a_mod_l =
      sc_reduce(std::span<const std::uint8_t>(k.a_clamped.data(), 32));
  const Sc s = sc_add(r, sc_mul(kchal, a_mod_l));

  Signature sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  const auto s_enc = sc_to_bytes(s);
  std::memcpy(sig.data() + 32, s_enc.data(), 32);
  return sig;
}

bool ed25519_verify(const PublicKey& pub, std::span<const std::uint8_t> msg,
                    const Signature& sig) {
  std::array<std::uint8_t, 32> r_enc, s_enc;
  std::memcpy(r_enc.data(), sig.data(), 32);
  std::memcpy(s_enc.data(), sig.data() + 32, 32);
  if (!sc_is_canonical(s_enc)) return false;

  const auto a_point = ge_from_bytes(pub);
  if (!a_point) return false;
  const auto r_point = ge_from_bytes(r_enc);
  if (!r_point) return false;

  Sha512 h;
  h.update(std::span<const std::uint8_t>(r_enc.data(), 32));
  h.update(std::span<const std::uint8_t>(pub.data(), 32));
  h.update(msg);
  const Sc kchal = sc_reduce(h.finalize());

  // Check S*B == R + k*A.
  const Ge lhs = ge_scalarmult_base(s_enc);
  const Ge rhs = ge_add(*r_point, ge_scalarmult(*a_point, sc_to_bytes(kchal)));
  return ge_eq(lhs, rhs);
}

}  // namespace lo::crypto
