#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/sha512.hpp"
#include "obs/profile.hpp"

namespace lo::crypto {
namespace detail {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (1ULL << 51) - 1;

// Little-endian bytes of L = 2^252 + 27742317777372353535851937790883648493.
constexpr std::uint8_t kLBytes[32] = {
    0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
    0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};

constexpr u64 kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                       0x1000000000000000ULL};

}  // namespace

// ---------------------------------------------------------------- field ----
//
// Limb-bound discipline (the fast paths depend on it):
//   * "carried" means every limb < 2^51 + 2^15 (the output of fe_carry,
//     fe_mul_raw, fe_sq_raw and fe_sub).
//   * fe_mul_raw / fe_sq_raw accept limbs < 2^54 and produce carried output.
//     A carried value, a sum of up to four carried values, or fe_sub output
//     all satisfy the input bound.
//   * fe_sub adds 4p before subtracting, so its second operand may be as
//     large as 2^53 - 77 per limb; every sum of two carried values
//     qualifies. (Using 2p here would leave no headroom over the doubled
//     products that ge_dbl/ge_add feed in.)
// The public fe_mul/fe_sq wrappers carry their inputs first, preserving the
// documented "values may be unnormalized" contract for callers outside this
// file; the group law below uses the raw versions.

Fe fe_zero() noexcept { return Fe{}; }

Fe fe_one() noexcept {
  Fe r;
  r.v[0] = 1;
  return r;
}

Fe fe_add(const Fe& a, const Fe& b) noexcept {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return r;
}

namespace {
// Carry-propagates so each limb is < 2^52 (top carry wraps with factor 19).
Fe fe_carry(const Fe& a) noexcept {
  Fe r = a;
  u64 c;
  for (int i = 0; i < 4; ++i) {
    c = r.v[i] >> 51;
    r.v[i] &= kMask51;
    r.v[i + 1] += c;
  }
  c = r.v[4] >> 51;
  r.v[4] &= kMask51;
  r.v[0] += 19 * c;
  // One more pass in case limb 0 overflowed 51 bits.
  c = r.v[0] >> 51;
  r.v[0] &= kMask51;
  r.v[1] += c;
  return r;
}
}  // namespace

Fe fe_sub(const Fe& a, const Fe& b) noexcept {
  // a + 4p - b keeps limbs non-negative for any b with limbs < 2^53 - 77,
  // which covers carried values and sums of two of them.
  Fe r;
  r.v[0] = a.v[0] + 0x1FFFFFFFFFFFB4ULL - b.v[0];
  r.v[1] = a.v[1] + 0x1FFFFFFFFFFFFCULL - b.v[1];
  r.v[2] = a.v[2] + 0x1FFFFFFFFFFFFCULL - b.v[2];
  r.v[3] = a.v[3] + 0x1FFFFFFFFFFFFCULL - b.v[3];
  r.v[4] = a.v[4] + 0x1FFFFFFFFFFFFCULL - b.v[4];
  return fe_carry(r);
}

Fe fe_neg(const Fe& a) noexcept { return fe_sub(fe_zero(), a); }

namespace {

// 5x51-bit schoolbook multiply with 19-folding. Inputs must have limbs
// < 2^54 (see the bound discipline above); no input carries are performed.
// Worst case per column: 5 products of (2^54)*(19*2^54) < 2^115, safely
// inside u128; the final top carry is folded in 128-bit arithmetic because
// 19*(r4 >> 51) can exceed 64 bits.
Fe fe_mul_raw(const Fe& a, const Fe& b) noexcept {
  const u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const u64 b1_19 = 19 * b1, b2_19 = 19 * b2, b3_19 = 19 * b3, b4_19 = 19 * b4;

  u128 r0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 +
            (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 r1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 +
            (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 r2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 +
            (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 r3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 +
            (u128)a4 * b4_19;
  u128 r4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 +
            (u128)a4 * b0;

  Fe out;
  r1 += r0 >> 51;
  out.v[0] = (u64)r0 & kMask51;
  r2 += r1 >> 51;
  out.v[1] = (u64)r1 & kMask51;
  r3 += r2 >> 51;
  out.v[2] = (u64)r2 & kMask51;
  r4 += r3 >> 51;
  out.v[3] = (u64)r3 & kMask51;
  const u128 top = (r4 >> 51) * 19 + out.v[0];
  out.v[4] = (u64)r4 & kMask51;
  out.v[0] = (u64)top & kMask51;
  out.v[1] += (u64)(top >> 51);
  return out;
}

// Dedicated squaring: 15 products instead of 25. Same input/output bounds
// as fe_mul_raw.
Fe fe_sq_raw(const Fe& a) noexcept {
  const u64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const u64 a0_2 = a0 * 2, a1_2 = a1 * 2, a2_2 = a2 * 2, a3_2 = a3 * 2;
  const u64 a3_19 = 19 * a3, a4_19 = 19 * a4;

  u128 r0 = (u128)a0 * a0 + (u128)a1_2 * a4_19 + (u128)a2_2 * a3_19;
  u128 r1 = (u128)a0_2 * a1 + (u128)a2_2 * a4_19 + (u128)a3 * a3_19;
  u128 r2 = (u128)a0_2 * a2 + (u128)a1 * a1 + (u128)a3_2 * a4_19;
  u128 r3 = (u128)a0_2 * a3 + (u128)a1_2 * a2 + (u128)a4 * a4_19;
  u128 r4 = (u128)a0_2 * a4 + (u128)a1_2 * a3 + (u128)a2 * a2;

  Fe out;
  r1 += r0 >> 51;
  out.v[0] = (u64)r0 & kMask51;
  r2 += r1 >> 51;
  out.v[1] = (u64)r1 & kMask51;
  r3 += r2 >> 51;
  out.v[2] = (u64)r2 & kMask51;
  r4 += r3 >> 51;
  out.v[3] = (u64)r3 & kMask51;
  const u128 top = (r4 >> 51) * 19 + out.v[0];
  out.v[4] = (u64)r4 & kMask51;
  out.v[0] = (u64)top & kMask51;
  out.v[1] += (u64)(top >> 51);
  return out;
}

Fe fe_sqn_raw(Fe a, int n) noexcept {
  for (int i = 0; i < n; ++i) a = fe_sq_raw(a);
  return a;
}

}  // namespace

Fe fe_mul(const Fe& f, const Fe& g) noexcept {
  return fe_mul_raw(fe_carry(f), fe_carry(g));
}

Fe fe_sq(const Fe& a) noexcept { return fe_sq_raw(fe_carry(a)); }

Fe fe_pow(const Fe& a, const std::array<std::uint8_t, 32>& e_le) noexcept {
  const Fe base = fe_carry(a);
  Fe result = fe_one();
  // Left-to-right square-and-multiply over 256 exponent bits.
  for (int i = 255; i >= 0; --i) {
    result = fe_sq_raw(result);
    if ((e_le[i / 8] >> (i % 8)) & 1) result = fe_mul_raw(result, base);
  }
  return result;
}

namespace {
// Shared prefix of the p-2 and (p-5)/8 addition chains: z^(2^250 - 1).
// 249 squarings + 11 multiplies, versus ~250 multiplies for the generic
// square-and-multiply over the same exponents.
Fe fe_pow_2_250_1(const Fe& z) noexcept {
  const Fe z2 = fe_sq_raw(z);                                  // 2
  const Fe z9 = fe_mul_raw(fe_sqn_raw(z2, 2), z);              // 9
  const Fe z11 = fe_mul_raw(z9, z2);                           // 11
  const Fe z_5_0 = fe_mul_raw(fe_sq_raw(z11), z9);             // 2^5 - 1
  const Fe z_10_0 = fe_mul_raw(fe_sqn_raw(z_5_0, 5), z_5_0);   // 2^10 - 1
  const Fe z_20_0 = fe_mul_raw(fe_sqn_raw(z_10_0, 10), z_10_0);
  const Fe z_40_0 = fe_mul_raw(fe_sqn_raw(z_20_0, 20), z_20_0);
  const Fe z_50_0 = fe_mul_raw(fe_sqn_raw(z_40_0, 10), z_10_0);
  const Fe z_100_0 = fe_mul_raw(fe_sqn_raw(z_50_0, 50), z_50_0);
  const Fe z_200_0 = fe_mul_raw(fe_sqn_raw(z_100_0, 100), z_100_0);
  return fe_mul_raw(fe_sqn_raw(z_200_0, 50), z_50_0);          // 2^250 - 1
}

Fe fe_pow11_raw(const Fe& z) noexcept {
  const Fe z2 = fe_sq_raw(z);
  return fe_mul_raw(fe_mul_raw(fe_sqn_raw(z2, 2), z), z2);     // z^11
}
}  // namespace

Fe fe_invert(const Fe& a) noexcept {
  // p - 2 = 2^255 - 21 = (2^250 - 1) * 2^5 + 11.
  const Fe z = fe_carry(a);
  return fe_mul_raw(fe_sqn_raw(fe_pow_2_250_1(z), 5), fe_pow11_raw(z));
}

Fe fe_pow2523(const Fe& a) noexcept {
  // (p - 5) / 8 = 2^252 - 3 = (2^250 - 1) * 2^2 + 1.
  const Fe z = fe_carry(a);
  return fe_mul_raw(fe_sqn_raw(fe_pow_2_250_1(z), 2), z);
}

Fe fe_from_bytes(const std::array<std::uint8_t, 32>& b) noexcept {
  auto load64 = [&](int off) {
    u64 v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b[off + i];
    return v;
  };
  Fe r;
  r.v[0] = load64(0) & kMask51;
  r.v[1] = (load64(6) >> 3) & kMask51;
  r.v[2] = (load64(12) >> 6) & kMask51;
  r.v[3] = (load64(19) >> 1) & kMask51;
  r.v[4] = (load64(24) >> 12) & kMask51;
  return r;
}

std::array<std::uint8_t, 32> fe_to_bytes(const Fe& a) noexcept {
  Fe t = fe_carry(fe_carry(a));
  // Subtract p if t >= p (limbs now < 2^52; canonical means < p).
  // Add 19 and check overflow of bit 255 to decide; standard trick:
  u64 q = (t.v[0] + 19) >> 51;
  q = (t.v[1] + q) >> 51;
  q = (t.v[2] + q) >> 51;
  q = (t.v[3] + q) >> 51;
  q = (t.v[4] + q) >> 51;
  t.v[0] += 19 * q;
  u64 c;
  c = t.v[0] >> 51; t.v[0] &= kMask51; t.v[1] += c;
  c = t.v[1] >> 51; t.v[1] &= kMask51; t.v[2] += c;
  c = t.v[2] >> 51; t.v[2] &= kMask51; t.v[3] += c;
  c = t.v[3] >> 51; t.v[3] &= kMask51; t.v[4] += c;
  t.v[4] &= kMask51;  // drop bit 255 (the subtraction of p)

  std::array<std::uint8_t, 32> out{};
  u64 limbs[4];
  limbs[0] = t.v[0] | (t.v[1] << 51);
  limbs[1] = (t.v[1] >> 13) | (t.v[2] << 38);
  limbs[2] = (t.v[2] >> 26) | (t.v[3] << 25);
  limbs[3] = (t.v[3] >> 39) | (t.v[4] << 12);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<std::uint8_t>(limbs[i] >> (8 * j));
    }
  }
  return out;
}

bool fe_is_zero(const Fe& a) noexcept {
  auto b = fe_to_bytes(a);
  std::uint8_t acc = 0;
  for (auto x : b) acc |= x;
  return acc == 0;
}

bool fe_is_negative(const Fe& a) noexcept { return fe_to_bytes(a)[0] & 1; }

bool fe_eq(const Fe& a, const Fe& b) noexcept {
  return fe_to_bytes(a) == fe_to_bytes(b);
}

// ---------------------------------------------------------------- curve ----

namespace {

struct CurveConstants {
  Fe d;        // -121665/121666
  Fe d2;       // 2*d
  Fe sqrtm1;   // sqrt(-1) = 2^((p-1)/4)
  Ge base;     // standard base point (y = 4/5, x even)
};

Fe fe_from_u64(u64 x) noexcept {
  Fe r;
  r.v[0] = x & kMask51;
  r.v[1] = x >> 51;
  return r;
}

const CurveConstants& constants();

// Decompression, parameterized so constants() can use it during init.
std::optional<Ge> ge_from_bytes_impl(const std::array<std::uint8_t, 32>& b,
                                     const Fe& d, const Fe& sqrtm1) noexcept {
  std::array<std::uint8_t, 32> yb = b;
  const bool sign = (yb[31] & 0x80) != 0;
  yb[31] &= 0x7f;
  const Fe y = fe_from_bytes(yb);
  // Reject non-canonical y (>= p). fe_from_bytes reduces silently, so compare.
  if (fe_to_bytes(y) != yb) return std::nullopt;

  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());           // y^2 - 1
  const Fe v = fe_add(fe_mul(d, y2), fe_one());  // d*y^2 + 1

  // x = u v^3 (u v^7)^((p-5)/8)
  const Fe v3 = fe_mul(fe_sq(v), v);
  const Fe v7 = fe_mul(fe_sq(v3), v);
  Fe x = fe_mul(fe_mul(u, v3), fe_pow2523(fe_mul(u, v7)));

  const Fe vxx = fe_mul(v, fe_sq(x));
  if (!fe_eq(vxx, u)) {
    if (fe_eq(vxx, fe_neg(u))) {
      x = fe_mul(x, sqrtm1);
    } else {
      return std::nullopt;
    }
  }
  if (fe_is_zero(x) && sign) return std::nullopt;
  if (fe_is_negative(x) != sign) x = fe_neg(x);

  Ge p;
  p.X = x;
  p.Y = y;
  p.Z = fe_one();
  p.T = fe_mul(x, y);
  return p;
}

const CurveConstants& constants() {
  static const CurveConstants c = [] {
    CurveConstants cc;
    // d = -121665/121666 mod p
    const Fe num = fe_neg(fe_from_u64(121665));
    const Fe den = fe_from_u64(121666);
    cc.d = fe_mul(num, fe_invert(den));
    cc.d2 = fe_add(cc.d, cc.d);
    // sqrt(-1) = 2^((p-1)/4), (p-1)/4 = 2^253 - 5.
    std::array<std::uint8_t, 32> e;
    e.fill(0xff);
    e[0] = 0xfb;
    e[31] = 0x1f;
    cc.sqrtm1 = fe_pow(fe_from_u64(2), e);
    // Base point: y = 4/5, x chosen with even sign bit.
    const Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
    auto enc = fe_to_bytes(y);  // sign bit 0 => even x
    auto base = ge_from_bytes_impl(enc, cc.d, cc.sqrtm1);
    cc.base = *base;  // must exist; checked by unit tests
    return cc;
  }();
  return c;
}

// A point in "cached" form for repeated mixed additions: precomputes the
// values the add-2008-hwcd-3 formula actually consumes (Y+X, Y-X, 2d*T).
// Saves one fe_mul per addition and is the natural shape for the static
// window tables below.
struct GeCached {
  Fe ypx, ymx, z, t2d;
};

GeCached ge_to_cached(const Ge& p) noexcept {
  GeCached c;
  c.ypx = fe_add(p.Y, p.X);
  c.ymx = fe_sub(p.Y, p.X);
  c.z = p.Z;
  c.t2d = fe_mul_raw(fe_carry(p.T), constants().d2);
  return c;
}

// add-2008-hwcd-3 for a = -1 with k = 2d; 8 field multiplies.
Ge ge_add_cached(const Ge& p, const GeCached& q) noexcept {
  const Fe a = fe_mul_raw(fe_sub(p.Y, p.X), q.ymx);
  const Fe b = fe_mul_raw(fe_add(p.Y, p.X), q.ypx);
  const Fe c = fe_mul_raw(p.T, q.t2d);
  Fe d = fe_mul_raw(p.Z, q.z);
  d = fe_add(d, d);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_sub(d, c);
  const Fe g = fe_add(d, c);
  const Fe h = fe_add(b, a);
  Ge r;
  r.X = fe_mul_raw(e, f);
  r.Y = fe_mul_raw(g, h);
  r.T = fe_mul_raw(e, h);
  r.Z = fe_mul_raw(f, g);
  return r;
}

// p - q: same formula against the negated cached point (ypx/ymx swap roles
// and 2d*T flips sign, which swaps f and g).
Ge ge_sub_cached(const Ge& p, const GeCached& q) noexcept {
  const Fe a = fe_mul_raw(fe_sub(p.Y, p.X), q.ypx);
  const Fe b = fe_mul_raw(fe_add(p.Y, p.X), q.ymx);
  const Fe c = fe_mul_raw(p.T, q.t2d);
  Fe d = fe_mul_raw(p.Z, q.z);
  d = fe_add(d, d);
  const Fe e = fe_sub(b, a);
  const Fe f = fe_add(d, c);
  const Fe g = fe_sub(d, c);
  const Fe h = fe_add(b, a);
  Ge r;
  r.X = fe_mul_raw(e, f);
  r.Y = fe_mul_raw(g, h);
  r.T = fe_mul_raw(e, h);
  r.Z = fe_mul_raw(f, g);
  return r;
}

// dbl-2008-hwcd for a = -1. Inputs must be carried (all producers in this
// file guarantee that).
Ge ge_dbl(const Ge& p) noexcept {
  const Fe a = fe_sq_raw(p.X);
  const Fe b = fe_sq_raw(p.Y);
  const Fe zz = fe_sq_raw(p.Z);
  const Fe c = fe_add(zz, zz);
  const Fe d = fe_neg(a);
  const Fe e = fe_sub(fe_sub(fe_sq_raw(fe_add(p.X, p.Y)), a), b);
  const Fe g = fe_add(d, b);
  const Fe f = fe_sub(g, c);
  const Fe h = fe_sub(d, b);
  Ge r;
  r.X = fe_mul_raw(e, f);
  r.Y = fe_mul_raw(g, h);
  r.T = fe_mul_raw(e, h);
  r.Z = fe_mul_raw(f, g);
  return r;
}

Ge ge_normalize(const Ge& p) noexcept {
  Ge r;
  r.X = fe_carry(p.X);
  r.Y = fe_carry(p.Y);
  r.Z = fe_carry(p.Z);
  r.T = fe_carry(p.T);
  return r;
}

// Precomputed multiples of the base point:
//   win[i][j] = (j+1) * 16^i * B   (fixed-base 4-bit windows; 64x15 entries)
//   naf[j]    = (2j+1) * B         (width-7 NAF digits 1,3,...,63; 32 entries)
// ~195 KiB total, built once on first use from the generic group law.
struct BaseTables {
  GeCached win[64][15];
  GeCached naf[32];
};

const BaseTables& base_tables() {
  static const BaseTables t = [] {
    BaseTables bt;
    const Ge& B = constants().base;
    Ge p = B;  // 16^i * B
    for (int i = 0; i < 64; ++i) {
      const GeCached pc = ge_to_cached(p);
      bt.win[i][0] = pc;
      Ge q = p;
      for (int j = 1; j < 15; ++j) {
        q = ge_add_cached(q, pc);
        bt.win[i][j] = ge_to_cached(q);
      }
      if (i < 63) p = ge_add_cached(q, pc);  // 15*16^i*B + 16^i*B
    }
    const GeCached b2 = ge_to_cached(ge_dbl(ge_normalize(B)));
    Ge q = B;
    bt.naf[0] = ge_to_cached(B);
    for (int j = 1; j < 32; ++j) {
      q = ge_add_cached(q, b2);
      bt.naf[j] = ge_to_cached(q);
    }
    return bt;
  }();
  return t;
}

// Signed sliding-window recoding: rewrites the scalar's bits into odd
// digits r[i] in [-bound, bound] (bound = 2^(w-1) - 1) such that
// sum r[i]*2^i == scalar, leaving runs of zeros between nonzero digits.
void slide(std::int8_t r[256], const std::array<std::uint8_t, 32>& a,
           int bound) noexcept {
  for (int i = 0; i < 256; ++i) {
    r[i] = static_cast<std::int8_t>(1 & (a[static_cast<std::size_t>(i) >> 3] >>
                                         (i & 7)));
  }
  for (int i = 0; i < 256; ++i) {
    if (!r[i]) continue;
    for (int b = 1; b <= 6 && i + b < 256; ++b) {
      if (!r[i + b]) continue;
      if (r[i] + (r[i + b] << b) <= bound) {
        r[i] = static_cast<std::int8_t>(r[i] + (r[i + b] << b));
        r[i + b] = 0;
      } else if (r[i] - (r[i + b] << b) >= -bound) {
        r[i] = static_cast<std::int8_t>(r[i] - (r[i + b] << b));
        for (int k = i + b; k < 256; ++k) {
          if (!r[k]) {
            r[k] = 1;
            break;
          }
          r[k] = 0;
        }
      } else {
        break;
      }
    }
  }
}

}  // namespace

Ge ge_identity() noexcept {
  Ge p;
  p.X = fe_zero();
  p.Y = fe_one();
  p.Z = fe_one();
  p.T = fe_zero();
  return p;
}

Ge ge_add(const Ge& p, const Ge& q) noexcept {
  // Public entry point: tolerate unnormalized coordinates, then use the
  // cached-point formula (identical group law, one fewer duplicate multiply
  // than spelling add-2008-hwcd-3 directly).
  return ge_add_cached(ge_normalize(p), ge_to_cached(ge_normalize(q)));
}

Ge ge_double(const Ge& p) noexcept { return ge_dbl(ge_normalize(p)); }

Ge ge_neg(const Ge& p) noexcept {
  Ge r = p;
  r.X = fe_neg(p.X);
  r.T = fe_neg(p.T);
  return r;
}

Ge ge_scalarmult(const Ge& p, const std::array<std::uint8_t, 32>& scalar) noexcept {
  Ge r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    r = ge_double(r);
    if ((scalar[i / 8] >> (i % 8)) & 1) r = ge_add(r, p);
  }
  return r;
}

Ge ge_scalarmult_base(const std::array<std::uint8_t, 32>& scalar) noexcept {
  // One table lookup + cached add per nonzero 4-bit window; no doublings.
  const BaseTables& t = base_tables();
  Ge h = ge_identity();
  for (int i = 0; i < 64; ++i) {
    const int d = (scalar[static_cast<std::size_t>(i) >> 1] >> (4 * (i & 1))) & 0xF;
    if (d) h = ge_add_cached(h, t.win[i][d - 1]);
  }
  return h;
}

Ge ge_double_scalarmult_base_vartime(const std::array<std::uint8_t, 32>& a,
                                     const Ge& A,
                                     const std::array<std::uint8_t, 32>& b) noexcept {
  // Straus/Shamir: a single doubling chain consumes both scalars' NAF digits.
  std::int8_t aslide[256];
  std::int8_t bslide[256];
  slide(aslide, a, 15);  // width-5 digits for the runtime point A
  slide(bslide, b, 63);  // width-7 digits for the precomputed base table

  // Odd multiples of A: ai[j] = (2j+1) * A.
  GeCached ai[8];
  const Ge an = ge_normalize(A);
  ai[0] = ge_to_cached(an);
  const GeCached a2 = ge_to_cached(ge_dbl(an));
  Ge cur = an;
  for (int j = 1; j < 8; ++j) {
    cur = ge_add_cached(cur, a2);
    ai[j] = ge_to_cached(cur);
  }

  const BaseTables& t = base_tables();
  int i = 255;
  while (i >= 0 && !aslide[i] && !bslide[i]) --i;
  Ge r = ge_identity();
  for (; i >= 0; --i) {
    r = ge_dbl(r);
    if (aslide[i] > 0) {
      r = ge_add_cached(r, ai[aslide[i] / 2]);
    } else if (aslide[i] < 0) {
      r = ge_sub_cached(r, ai[(-aslide[i]) / 2]);
    }
    if (bslide[i] > 0) {
      r = ge_add_cached(r, t.naf[bslide[i] / 2]);
    } else if (bslide[i] < 0) {
      r = ge_sub_cached(r, t.naf[(-bslide[i]) / 2]);
    }
  }
  return r;
}

std::array<std::uint8_t, 32> ge_to_bytes(const Ge& p) noexcept {
  const Fe zinv = fe_invert(p.Z);
  const Fe x = fe_mul(p.X, zinv);
  const Fe y = fe_mul(p.Y, zinv);
  auto out = fe_to_bytes(y);
  if (fe_is_negative(x)) out[31] |= 0x80;
  return out;
}

std::optional<Ge> ge_from_bytes(const std::array<std::uint8_t, 32>& b) noexcept {
  const auto& c = constants();
  return ge_from_bytes_impl(b, c.d, c.sqrtm1);
}

bool ge_eq(const Ge& p, const Ge& q) noexcept {
  // Cross-multiply to avoid inversions: X1*Z2 == X2*Z1 and Y1*Z2 == Y2*Z1.
  return fe_eq(fe_mul(p.X, q.Z), fe_mul(q.X, p.Z)) &&
         fe_eq(fe_mul(p.Y, q.Z), fe_mul(q.Y, p.Z));
}

// -------------------------------------------------------------- scalars ----

namespace {

bool sc_geq(const u64 a[4], const u64 b[4]) noexcept {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;  // equal
}

void sc_sub_inplace(u64 a[4], const u64 b[4]) noexcept {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 bi = b[i] + borrow;
    // borrow propagation: b[i] + borrow can wrap only if b[i] == ~0 && borrow,
    // in which case subtracting it is subtracting 0 with borrow carried on.
    const bool wrap = (bi < b[i]);
    const u64 before = a[i];
    a[i] -= bi;
    borrow = (wrap || a[i] > before) ? 1 : 0;
  }
}

}  // namespace

Sc sc_zero() noexcept { return Sc{}; }

Sc sc_reduce(std::span<const std::uint8_t> bytes_le) noexcept {
  // Horner over bits, MSB first: r = 2r + bit (mod L). Keeps r < L throughout
  // (2r + 1 < 2L so at most one subtraction per step). Slow but obviously
  // correct; scalar throughput is measured in bench_crypto.
  Sc r{};
  const int nbits = static_cast<int>(bytes_le.size()) * 8;
  for (int i = nbits - 1; i >= 0; --i) {
    // r <<= 1
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u64 nv = (r.v[j] << 1) | carry;
      carry = r.v[j] >> 63;
      r.v[j] = nv;
    }
    // += bit
    if ((bytes_le[static_cast<std::size_t>(i) / 8] >> (i % 8)) & 1) {
      int j = 0;
      while (j < 4 && ++r.v[j] == 0) ++j;
    }
    if (sc_geq(r.v, kL)) sc_sub_inplace(r.v, kL);
  }
  return r;
}

Sc sc_add(const Sc& a, const Sc& b) noexcept {
  Sc r;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u64 s1 = a.v[i] + carry;
    const bool c1 = s1 < a.v[i];
    const u64 s2 = s1 + b.v[i];
    const bool c2 = s2 < s1;
    r.v[i] = s2;
    carry = (c1 || c2) ? 1 : 0;
  }
  // a, b < L < 2^253 so no overflow past limb 3; reduce once.
  if (sc_geq(r.v, kL)) sc_sub_inplace(r.v, kL);
  return r;
}

Sc sc_mul(const Sc& a, const Sc& b) noexcept {
  // Schoolbook 4x4 -> 8 limbs, then byte-serialize and reduce.
  u64 prod[8] = {0};
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = (u128)a.v[i] * b.v[j] + prod[i + j] + carry;
      prod[i + j] = (u64)cur;
      carry = (u64)(cur >> 64);
    }
    prod[i + 4] += carry;
  }
  std::uint8_t bytes[64];
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      bytes[8 * i + j] = static_cast<std::uint8_t>(prod[i] >> (8 * j));
    }
  }
  return sc_reduce(std::span<const std::uint8_t>(bytes, 64));
}

Sc sc_neg(const Sc& a) noexcept {
  if ((a.v[0] | a.v[1] | a.v[2] | a.v[3]) == 0) return sc_zero();
  Sc r;
  u64 limbs[4] = {kL[0], kL[1], kL[2], kL[3]};
  sc_sub_inplace(limbs, a.v);
  for (int i = 0; i < 4; ++i) r.v[i] = limbs[i];
  return r;
}

std::array<std::uint8_t, 32> sc_to_bytes(const Sc& a) noexcept {
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<std::uint8_t>(a.v[i] >> (8 * j));
    }
  }
  return out;
}

bool sc_is_canonical(const std::array<std::uint8_t, 32>& b) noexcept {
  // Lexicographic compare against L, big-endian-wise from the top byte.
  for (int i = 31; i >= 0; --i) {
    if (b[i] < kLBytes[i]) return true;
    if (b[i] > kLBytes[i]) return false;
  }
  return false;  // equal to L is non-canonical
}

}  // namespace detail

// ------------------------------------------------------------ high level ----

namespace {

using namespace detail;

struct ExpandedKey {
  std::array<std::uint8_t, 32> a_clamped;  // scalar bytes for A = a*B
  std::array<std::uint8_t, 32> prefix;
};

ExpandedKey expand(const SecretSeed& seed) {
  const Digest512 h = sha512(std::span<const std::uint8_t>(seed.data(), seed.size()));
  ExpandedKey k;
  std::memcpy(k.a_clamped.data(), h.data(), 32);
  std::memcpy(k.prefix.data(), h.data() + 32, 32);
  k.a_clamped[0] &= 248;
  k.a_clamped[31] &= 127;
  k.a_clamped[31] |= 64;
  return k;
}

// Core of verification with a pre-decompressed A. Checks S*B == R + k*A by
// computing R' = S*B + k*(-A) with one interleaved double-scalar multiply and
// comparing encodings: R' encodes canonically, so byte equality with sig[0..32)
// holds exactly when the old decompress-R-and-ge_eq check accepted (a
// non-canonical or non-point R can never match a canonical encoding). The
// point -A (rather than the scalar L-k) keeps the check correct for public
// keys with a torsion component, where L*A != identity.
bool verify_with_point(const Ge& a_point, const PublicKey& pub_enc,
                       std::span<const std::uint8_t> msg, const Signature& sig) {
  std::array<std::uint8_t, 32> r_enc, s_enc;
  std::memcpy(r_enc.data(), sig.data(), 32);
  std::memcpy(s_enc.data(), sig.data() + 32, 32);
  if (!sc_is_canonical(s_enc)) return false;

  Sha512 h;
  h.update(std::span<const std::uint8_t>(r_enc.data(), 32));
  h.update(std::span<const std::uint8_t>(pub_enc.data(), 32));
  h.update(msg);
  const Sc kchal = sc_reduce(h.finalize());

  const Ge rcheck = ge_double_scalarmult_base_vartime(
      sc_to_bytes(kchal), ge_neg(a_point), s_enc);
  return ge_to_bytes(rcheck) == r_enc;
}

}  // namespace

PublicKey ed25519_public_key(const SecretSeed& seed) {
  const ExpandedKey k = expand(seed);
  return ge_to_bytes(ge_scalarmult_base(k.a_clamped));
}

Signature ed25519_sign(const SecretSeed& seed, std::span<const std::uint8_t> msg) {
  obs::ScopedProfile prof(obs::ProfileSite::kEd25519Sign, msg.size());
  const ExpandedKey k = expand(seed);
  const PublicKey a_enc = ge_to_bytes(ge_scalarmult_base(k.a_clamped));

  Sha512 h1;
  h1.update(std::span<const std::uint8_t>(k.prefix.data(), 32));
  h1.update(msg);
  const Sc r = sc_reduce(h1.finalize());

  const auto r_enc = ge_to_bytes(ge_scalarmult_base(sc_to_bytes(r)));

  Sha512 h2;
  h2.update(std::span<const std::uint8_t>(r_enc.data(), 32));
  h2.update(std::span<const std::uint8_t>(a_enc.data(), 32));
  h2.update(msg);
  const Sc kchal = sc_reduce(h2.finalize());

  const Sc a_mod_l =
      sc_reduce(std::span<const std::uint8_t>(k.a_clamped.data(), 32));
  const Sc s = sc_add(r, sc_mul(kchal, a_mod_l));

  Signature sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  const auto s_enc = sc_to_bytes(s);
  std::memcpy(sig.data() + 32, s_enc.data(), 32);
  return sig;
}

bool ed25519_verify(const PublicKey& pub, std::span<const std::uint8_t> msg,
                    const Signature& sig) {
  obs::ScopedProfile prof(obs::ProfileSite::kEd25519Verify, msg.size());
  const auto a_point = ge_from_bytes(pub);
  if (!a_point) return false;
  return verify_with_point(*a_point, pub, msg, sig);
}

std::optional<PreparedPublicKey> ed25519_prepare(const PublicKey& pub) {
  const auto a_point = ge_from_bytes(pub);
  if (!a_point) return std::nullopt;
  PreparedPublicKey k;
  k.encoded = pub;
  k.point = *a_point;
  return k;
}

bool ed25519_verify_prepared(const PreparedPublicKey& key,
                             std::span<const std::uint8_t> msg,
                             const Signature& sig) {
  obs::ScopedProfile prof(obs::ProfileSite::kEd25519Verify, msg.size());
  return verify_with_point(key.point, key.encoded, msg, sig);
}

bool ed25519_verify_reference(const PublicKey& pub,
                              std::span<const std::uint8_t> msg,
                              const Signature& sig) {
  // The seed implementation, verbatim: decompress both A and R, two generic
  // double-and-add scalar multiplies, projective comparison.
  std::array<std::uint8_t, 32> r_enc, s_enc;
  std::memcpy(r_enc.data(), sig.data(), 32);
  std::memcpy(s_enc.data(), sig.data() + 32, 32);
  if (!sc_is_canonical(s_enc)) return false;

  const auto a_point = ge_from_bytes(pub);
  if (!a_point) return false;
  const auto r_point = ge_from_bytes(r_enc);
  if (!r_point) return false;

  Sha512 h;
  h.update(std::span<const std::uint8_t>(r_enc.data(), 32));
  h.update(std::span<const std::uint8_t>(pub.data(), 32));
  h.update(msg);
  const Sc kchal = sc_reduce(h.finalize());

  // Check S*B == R + k*A, with the generic double-and-add for both scalar
  // multiplies so this path keeps the seed's cost profile as a benchmark
  // baseline (ge_scalarmult_base now uses the window table).
  std::array<std::uint8_t, 32> one{};
  one[0] = 1;
  const Ge base = ge_scalarmult_base(one);
  const Ge lhs = ge_scalarmult(base, s_enc);
  const Ge rhs = ge_add(*r_point, ge_scalarmult(*a_point, sc_to_bytes(kchal)));
  return ge_eq(lhs, rhs);
}

}  // namespace lo::crypto
