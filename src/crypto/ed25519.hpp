// Ed25519 (RFC 8032) implemented from scratch: GF(2^255-19) field arithmetic
// with 51-bit limbs, twisted-Edwards point arithmetic in extended coordinates,
// and scalar arithmetic modulo the group order L.
//
// This implementation is NOT constant-time; it exists to make commitments and
// blocks third-party verifiable in the reproduction, not to protect live keys.
// Verification is the hot path at simulation scale, so it uses precomputed
// window tables for the base point and Straus/Shamir w-NAF interleaving for
// the double-scalar check (see DESIGN.md "verify fast path"); the generic
// algorithms are retained as differential-testing references.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

namespace lo::crypto {

using PublicKey = std::array<std::uint8_t, 32>;
using SecretSeed = std::array<std::uint8_t, 32>;
using Signature = std::array<std::uint8_t, 64>;

// Derives the public key for a 32-byte secret seed.
PublicKey ed25519_public_key(const SecretSeed& seed);

// Produces a deterministic RFC 8032 signature over `msg`.
Signature ed25519_sign(const SecretSeed& seed, std::span<const std::uint8_t> msg);

// Verifies a signature; returns false for malformed points, non-canonical
// scalars (S >= L) and, of course, wrong signatures.
bool ed25519_verify(const PublicKey& pub, std::span<const std::uint8_t> msg,
                    const Signature& sig);

// Pre-optimization verification algorithm (generic double-and-add plus R
// decompression). Retained as a differential-testing oracle and so
// bench_crypto can report the before/after verify throughput in one binary.
// Must accept/reject exactly the same inputs as ed25519_verify.
bool ed25519_verify_reference(const PublicKey& pub,
                              std::span<const std::uint8_t> msg,
                              const Signature& sig);

namespace detail {

// ---- Field GF(2^255 - 19) ----
// Limbs are 51 bits; values may be unnormalized between operations.
struct Fe {
  std::uint64_t v[5]{};
};

Fe fe_zero() noexcept;
Fe fe_one() noexcept;
Fe fe_add(const Fe& a, const Fe& b) noexcept;
Fe fe_sub(const Fe& a, const Fe& b) noexcept;
Fe fe_neg(const Fe& a) noexcept;
Fe fe_mul(const Fe& a, const Fe& b) noexcept;
Fe fe_sq(const Fe& a) noexcept;
// a^e where e is a 32-byte little-endian exponent.
Fe fe_pow(const Fe& a, const std::array<std::uint8_t, 32>& e_le) noexcept;
Fe fe_invert(const Fe& a) noexcept;        // a^(p-2)
Fe fe_pow2523(const Fe& a) noexcept;       // a^((p-5)/8), used for sqrt
Fe fe_from_bytes(const std::array<std::uint8_t, 32>& b) noexcept;  // ignores bit 255
std::array<std::uint8_t, 32> fe_to_bytes(const Fe& a) noexcept;    // canonical
bool fe_is_zero(const Fe& a) noexcept;
bool fe_is_negative(const Fe& a) noexcept;  // lsb of canonical form
bool fe_eq(const Fe& a, const Fe& b) noexcept;

// ---- Group: twisted Edwards curve -x^2 + y^2 = 1 + d x^2 y^2 ----
// Extended coordinates (X : Y : Z : T), T = XY/Z.
struct Ge {
  Fe X, Y, Z, T;
};

Ge ge_identity() noexcept;
Ge ge_add(const Ge& p, const Ge& q) noexcept;
Ge ge_double(const Ge& p) noexcept;
Ge ge_neg(const Ge& p) noexcept;
// Scalar is 32 little-endian bytes (up to 256 bits, no clamping applied here).
// Generic double-and-add; kept as the reference algorithm for the fast paths.
Ge ge_scalarmult(const Ge& p, const std::array<std::uint8_t, 32>& scalar) noexcept;
// Fixed-base multiply via a precomputed 4-bit window table (64 windows x 15
// odd/even multiples of 16^i * B); no doublings in the main loop.
Ge ge_scalarmult_base(const std::array<std::uint8_t, 32>& scalar) noexcept;
// a*A + b*B via Straus/Shamir interleaving: one shared doubling chain, w-NAF
// digits for both scalars (width 5 for A, width 7 for the static B table).
// Variable-time, like everything else here.
Ge ge_double_scalarmult_base_vartime(const std::array<std::uint8_t, 32>& a,
                                     const Ge& A,
                                     const std::array<std::uint8_t, 32>& b) noexcept;
std::array<std::uint8_t, 32> ge_to_bytes(const Ge& p) noexcept;
std::optional<Ge> ge_from_bytes(const std::array<std::uint8_t, 32>& b) noexcept;
bool ge_eq(const Ge& p, const Ge& q) noexcept;

// ---- Scalars modulo L = 2^252 + 27742317777372353535851937790883648493 ----
struct Sc {
  std::uint64_t v[4]{};  // little-endian limbs, always < L after reduction
};

Sc sc_zero() noexcept;
// Reduces a little-endian byte string (up to 64 bytes) modulo L.
Sc sc_reduce(std::span<const std::uint8_t> bytes_le) noexcept;
Sc sc_add(const Sc& a, const Sc& b) noexcept;
Sc sc_mul(const Sc& a, const Sc& b) noexcept;
Sc sc_neg(const Sc& a) noexcept;  // L - a (0 maps to 0)
std::array<std::uint8_t, 32> sc_to_bytes(const Sc& a) noexcept;
// True iff the 32 little-endian bytes encode a value < L (canonical S check).
bool sc_is_canonical(const std::array<std::uint8_t, 32>& b) noexcept;

}  // namespace detail

// A public key decompressed once and reused across verifications. The
// expensive half of a cold verify is reconstructing A from its 32-byte
// encoding (a field exponentiation for the square root); peers sign many
// messages with the same key, so crypto::VerifyCache keeps these in an LRU.
struct PreparedPublicKey {
  PublicKey encoded;  // original wire encoding; feeds the challenge hash
  detail::Ge point;   // decompressed A
};

// Decompresses `pub`; nullopt on a malformed or non-canonical encoding
// (exactly the inputs ed25519_verify rejects before hashing anything).
std::optional<PreparedPublicKey> ed25519_prepare(const PublicKey& pub);

// Same accept/reject behavior as ed25519_verify(key.encoded, msg, sig) but
// skips the per-call decompression.
bool ed25519_verify_prepared(const PreparedPublicKey& key,
                             std::span<const std::uint8_t> msg,
                             const Signature& sig);

}  // namespace lo::crypto
