// SHA-512 (FIPS 180-4), implemented from scratch. Required by Ed25519
// (RFC 8032 uses SHA-512 for key expansion and the Fiat–Shamir challenge).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace lo::crypto {

using Digest512 = std::array<std::uint8_t, 64>;

class Sha512 {
 public:
  Sha512() noexcept { reset(); }

  void reset() noexcept;
  Sha512& update(std::span<const std::uint8_t> data) noexcept;
  Sha512& update(std::string_view s) noexcept {
    return update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  Digest512 finalize() noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::uint64_t h_[8];
  std::uint64_t length_ = 0;  // total bytes absorbed (<< 2^61 in practice)
  std::uint8_t buf_[128];
  std::size_t buf_len_ = 0;
};

Digest512 sha512(std::span<const std::uint8_t> data) noexcept;
Digest512 sha512(std::string_view s) noexcept;

}  // namespace lo::crypto
