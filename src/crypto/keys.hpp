// Key management for simulated nodes.
//
// Every miner owns an Ed25519 keypair and is identified by its public key
// (Sec. 3 of the paper). For simulations with thousands of nodes, real curve
// arithmetic on every message would dominate the run time without changing
// any protocol behaviour, so a Signer can also run in kSimFast mode: the
// "signature" is SHA-512(seed ‖ message), still 64 bytes on the wire (so all
// bandwidth numbers are identical) and still verifiable within the simulation
// via the shared key registry. Protocol logic never knows which mode is used.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "crypto/ed25519.hpp"

namespace lo::crypto {

enum class SignatureMode : std::uint8_t {
  kEd25519,  // real RFC 8032 signatures (default in tests and examples)
  kSimFast,  // keyed-hash stand-in with identical wire size (large benches)
};

struct KeyPair {
  SecretSeed seed{};
  PublicKey pub{};
};

// Deterministically derives a keypair from a 64-bit identity seed.
KeyPair derive_keypair(std::uint64_t id_seed, SignatureMode mode);

class Signer {
 public:
  Signer(KeyPair kp, SignatureMode mode) : kp_(kp), mode_(mode) {}

  const PublicKey& public_key() const noexcept { return kp_.pub; }
  SignatureMode mode() const noexcept { return mode_; }

  Signature sign(std::span<const std::uint8_t> msg) const;

  // Verification needs only the claimed public key; in kSimFast mode the
  // "public key" doubles as the MAC key (acceptable inside one process).
  static bool verify(SignatureMode mode, const PublicKey& pub,
                     std::span<const std::uint8_t> msg, const Signature& sig);

 private:
  KeyPair kp_;
  SignatureMode mode_;
};

}  // namespace lo::crypto
