// Verification fast path caches (see DESIGN.md "verify fast path").
//
// Two memoization layers in front of Ed25519 verification, both caching a
// pure function of the exact bytes involved, so neither can change any
// observable accept/reject decision:
//
//  * key cache — encoded public key -> decompressed curve point
//    (PreparedPublicKey). Peers sign every commitment with the same key, so
//    the field square root inside point decompression is paid once per peer
//    instead of once per message.
//
//  * verify memo — SHA-256("lo-vmemo" || pub || sig || msg) -> bool.
//    Duplicate deliveries of the same signed transaction/commitment through
//    different peers skip the curve arithmetic entirely. Both accepts and
//    rejects are memoized: a *mutated* duplicate (any flipped bit in key,
//    signature or message) hashes to a different memo key and takes the cold
//    path, so a forgery can never ride a cached accept.
//
// Both layers are LRU-bounded. Iteration order of the backing unordered
// indices is never observed (lookups and an intrusive recency list only), so
// the cache is deterministic: same call sequence, same hits, same evictions.
//
// kSimFast signatures are a single keyed hash — as cheap as the memo lookup
// itself — so that mode bypasses the cache entirely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>

#include "crypto/ed25519.hpp"
#include "crypto/keys.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lo::crypto {

struct VerifyCacheStats {
  std::uint64_t key_hits = 0;
  std::uint64_t key_misses = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;

  VerifyCacheStats& operator+=(const VerifyCacheStats& o) noexcept {
    key_hits += o.key_hits;
    key_misses += o.key_misses;
    memo_hits += o.memo_hits;
    memo_misses += o.memo_misses;
    return *this;
  }
};

class VerifyCache {
 public:
  explicit VerifyCache(std::size_t key_capacity = kDefaultKeyCapacity,
                       std::size_t memo_capacity = kDefaultMemoCapacity)
      : key_capacity_(key_capacity ? key_capacity : 1),
        memo_capacity_(memo_capacity ? memo_capacity : 1) {}

  // Drop-in replacement for Signer::verify: returns the same boolean on
  // every input, amortizing decompression and duplicate verifications.
  bool verify(SignatureMode mode, const PublicKey& pub,
              std::span<const std::uint8_t> msg, const Signature& sig);

  // The hit/miss counters live either in local storage (default) or, after
  // bind(), in a metrics registry (per-node labeled cells); this is a thin
  // read shim over the active cells so pre-registry callers keep compiling
  // unchanged.
  VerifyCacheStats stats() const noexcept {
    return VerifyCacheStats{key_hits(), key_misses(), memo_hits(),
                            memo_misses()};
  }
  std::size_t key_cache_size() const noexcept { return key_index_.size(); }
  std::size_t memo_size() const noexcept { return memo_index_.size(); }

  // Repoints the stat counters at registry cells created through `scope`
  // (e.g. labeled {node=i}); current values carry over, so binding mid-run
  // loses nothing. The scope is stored so detached-scope storage stays
  // alive as long as the cache.
  void bind(obs::Scope scope);

  // Optional tracer: on each verify the cache emits a kCacheProbe event
  // (a = hit, b = tier: 0 key, 1 memo) attributed to `node`.
  void set_tracer(obs::Tracer* tracer, std::uint32_t node) noexcept {
    tracer_ = tracer;
    trace_node_ = node;
  }

  // Drops all entries; counters are preserved. Correctness never requires
  // calling this (entries are pure-function results), it only frees memory.
  void clear();

  static constexpr std::size_t kDefaultKeyCapacity = 256;
  static constexpr std::size_t kDefaultMemoCapacity = 4096;

 private:
  // Keys are point encodings / SHA-256 outputs, already uniformly
  // distributed; the first 8 bytes make a fine hash.
  struct ArrayHash {
    std::size_t operator()(const std::array<std::uint8_t, 32>& a) const noexcept {
      std::uint64_t h = 0;
      for (int i = 7; i >= 0; --i) h = (h << 8) | a[static_cast<std::size_t>(i)];
      return static_cast<std::size_t>(h);
    }
  };

  struct KeyEntry {
    PublicKey key{};
    PreparedPublicKey prepared{};
  };
  struct MemoEntry {
    Digest256 key{};
    bool ok = false;
  };

  using KeyList = std::list<KeyEntry>;
  using MemoList = std::list<MemoEntry>;

  // Returns the prepared point for `pub`, decompressing and caching on miss;
  // nullptr for malformed keys (never cached — they always re-reject cold).
  const PreparedPublicKey* prepared_key(const PublicKey& pub);

  // Active counter cells: registry-bound when the pointer is set, local
  // otherwise. Indirection (instead of self-pointing defaults) keeps the
  // implicitly generated copy operations meaningful for unbound caches.
  std::uint64_t& key_hits() const noexcept {
    return c_key_hits_ != nullptr ? *c_key_hits_ : local_stats_.key_hits;
  }
  std::uint64_t& key_misses() const noexcept {
    return c_key_misses_ != nullptr ? *c_key_misses_ : local_stats_.key_misses;
  }
  std::uint64_t& memo_hits() const noexcept {
    return c_memo_hits_ != nullptr ? *c_memo_hits_ : local_stats_.memo_hits;
  }
  std::uint64_t& memo_misses() const noexcept {
    return c_memo_misses_ != nullptr ? *c_memo_misses_
                                     : local_stats_.memo_misses;
  }

  std::size_t key_capacity_;
  std::size_t memo_capacity_;
  // front() = most recently used; the unordered indices are lookup-only
  // (never iterated), keeping behavior independent of hash-table layout.
  KeyList key_lru_;
  MemoList memo_lru_;
  std::unordered_map<PublicKey, KeyList::iterator, ArrayHash> key_index_;
  std::unordered_map<Digest256, MemoList::iterator, ArrayHash> memo_index_;
  mutable VerifyCacheStats local_stats_;
  obs::Scope scope_;
  std::uint64_t* c_key_hits_ = nullptr;
  std::uint64_t* c_key_misses_ = nullptr;
  std::uint64_t* c_memo_hits_ = nullptr;
  std::uint64_t* c_memo_misses_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t trace_node_ = 0;
};

}  // namespace lo::crypto
