// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for transaction ids, commitment chain hashes, block hashes and the
// seeded intra-bundle shuffle (Sec. 4.3 of the paper: "order seed value is
// based on the hash of the last created block").
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace lo::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  Sha256& update(std::span<const std::uint8_t> data) noexcept;
  Sha256& update(std::string_view s) noexcept {
    return update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  // Finalizes and returns the digest. The object must be reset() before reuse.
  Digest256 finalize() noexcept;

 private:
  void compress(const std::uint8_t* block) noexcept;

  std::uint32_t h_[8];
  std::uint64_t length_ = 0;       // total bytes absorbed
  std::uint8_t buf_[64];
  std::size_t buf_len_ = 0;
};

Digest256 sha256(std::span<const std::uint8_t> data) noexcept;
Digest256 sha256(std::string_view s) noexcept;

}  // namespace lo::crypto
