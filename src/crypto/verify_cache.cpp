#include "crypto/verify_cache.hpp"

#include "obs/profile.hpp"

namespace lo::crypto {

void VerifyCache::bind(obs::Scope scope) {
  scope_ = std::move(scope);
  const VerifyCacheStats carry = stats();
  c_key_hits_ = &scope_.counter("verify_cache.key_hits");
  c_key_misses_ = &scope_.counter("verify_cache.key_misses");
  c_memo_hits_ = &scope_.counter("verify_cache.memo_hits");
  c_memo_misses_ = &scope_.counter("verify_cache.memo_misses");
  *c_key_hits_ += carry.key_hits;
  *c_key_misses_ += carry.key_misses;
  *c_memo_hits_ += carry.memo_hits;
  *c_memo_misses_ += carry.memo_misses;
  local_stats_ = VerifyCacheStats{};
}

const PreparedPublicKey* VerifyCache::prepared_key(const PublicKey& pub) {
  const auto it = key_index_.find(pub);
  if (it != key_index_.end()) {
    ++key_hits();
    if (tracer_ != nullptr) {
      tracer_->emit(obs::EventKind::kCacheProbe, trace_node_, 0, 1, 0);
    }
    key_lru_.splice(key_lru_.begin(), key_lru_, it->second);
    return &key_lru_.front().prepared;
  }
  ++key_misses();
  if (tracer_ != nullptr) {
    tracer_->emit(obs::EventKind::kCacheProbe, trace_node_, 0, 0, 0);
  }
  auto prepared = ed25519_prepare(pub);
  if (!prepared) return nullptr;
  if (key_index_.size() >= key_capacity_) {
    key_index_.erase(key_lru_.back().key);
    key_lru_.pop_back();
  }
  key_lru_.push_front(KeyEntry{pub, *prepared});
  key_index_.emplace(pub, key_lru_.begin());
  return &key_lru_.front().prepared;
}

bool VerifyCache::verify(SignatureMode mode, const PublicKey& pub,
                         std::span<const std::uint8_t> msg,
                         const Signature& sig) {
  if (mode != SignatureMode::kEd25519) return Signer::verify(mode, pub, msg, sig);
  obs::ScopedProfile prof(obs::ProfileSite::kVerifyCacheProbe);

  Sha256 h;
  h.update("lo-vmemo");
  h.update(std::span<const std::uint8_t>(pub.data(), pub.size()));
  h.update(std::span<const std::uint8_t>(sig.data(), sig.size()));
  h.update(msg);
  const Digest256 memo_key = h.finalize();

  const auto it = memo_index_.find(memo_key);
  if (it != memo_index_.end()) {
    ++memo_hits();
    if (tracer_ != nullptr) {
      tracer_->emit(obs::EventKind::kCacheProbe, trace_node_, 0, 1, 1);
    }
    memo_lru_.splice(memo_lru_.begin(), memo_lru_, it->second);
    return memo_lru_.front().ok;
  }
  ++memo_misses();
  if (tracer_ != nullptr) {
    tracer_->emit(obs::EventKind::kCacheProbe, trace_node_, 0, 0, 1);
  }

  const PreparedPublicKey* key = prepared_key(pub);
  const bool ok = key != nullptr && ed25519_verify_prepared(*key, msg, sig);

  if (memo_index_.size() >= memo_capacity_) {
    memo_index_.erase(memo_lru_.back().key);
    memo_lru_.pop_back();
  }
  memo_lru_.push_front(MemoEntry{memo_key, ok});
  memo_index_.emplace(memo_key, memo_lru_.begin());
  return ok;
}

void VerifyCache::clear() {
  key_index_.clear();
  key_lru_.clear();
  memo_index_.clear();
  memo_lru_.clear();
}

}  // namespace lo::crypto
