#include "crypto/keys.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace lo::crypto {

KeyPair derive_keypair(std::uint64_t id_seed, SignatureMode mode) {
  KeyPair kp;
  std::uint8_t buf[16] = {'l', 'o', 'k', 'e', 'y', 0, 0, 0};
  for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<std::uint8_t>(id_seed >> (8 * i));
  kp.seed = sha256(std::span<const std::uint8_t>(buf, sizeof buf));
  if (mode == SignatureMode::kEd25519) {
    kp.pub = ed25519_public_key(kp.seed);
  } else {
    // kSimFast: public key = SHA-256("pub" || seed). Within a single-process
    // simulation this is an unforgeable-enough binding because seeds never
    // leave the key registry.
    Sha256 h;
    h.update("simfast-pub");
    h.update(std::span<const std::uint8_t>(kp.seed.data(), kp.seed.size()));
    kp.pub = h.finalize();
  }
  return kp;
}

Signature Signer::sign(std::span<const std::uint8_t> msg) const {
  if (mode_ == SignatureMode::kEd25519) return ed25519_sign(kp_.seed, msg);
  // kSimFast: 64-byte keyed hash. Keyed by the *public* key so that any node
  // in the simulation can verify without access to the seed; this loses
  // unforgeability but simulated adversaries never forge signatures in the
  // paper's model (they equivocate or stay silent instead).
  Sha512 h;
  h.update("simfast-sig");
  h.update(std::span<const std::uint8_t>(kp_.pub.data(), kp_.pub.size()));
  h.update(msg);
  return h.finalize();
}

bool Signer::verify(SignatureMode mode, const PublicKey& pub,
                    std::span<const std::uint8_t> msg, const Signature& sig) {
  if (mode == SignatureMode::kEd25519) return ed25519_verify(pub, msg, sig);
  Sha512 h;
  h.update("simfast-sig");
  h.update(std::span<const std::uint8_t>(pub.data(), pub.size()));
  h.update(msg);
  return h.finalize() == sig;
}

}  // namespace lo::crypto
