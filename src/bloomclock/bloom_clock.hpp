// Bloom Clock (Ramabaja [35]) — a counting-Bloom-filter logical clock.
//
// In LØ (Sec. 4.2), each commitment carries a Bloom Clock over the node's
// append-only transaction set. The clock serves two purposes:
//  1. cheap consistency pre-check during reconciliation: if two clocks are
//     incomparable where one should dominate, something was withheld;
//  2. a preliminary estimate of the set difference, used to size/partition
//     the Minisketch reconciliation and avoid decode failures.
//
// The paper fixes 32 cells at 68 bytes total; with 16-bit counters that is
// 64 bytes of cells + 4 bytes of header, which this implementation mirrors.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace lo::bloom {

enum class ClockOrder : std::uint8_t {
  kEqual,
  kBefore,        // this <= other componentwise (and not equal)
  kAfter,         // this >= other componentwise (and not equal)
  kConcurrent,    // incomparable
};

class BloomClock {
 public:
  explicit BloomClock(std::size_t cells = 32, unsigned hashes = 1);

  std::size_t cells() const noexcept { return counters_.size(); }
  unsigned hashes() const noexcept { return hashes_; }

  // Inserts an item (a transaction id); increments `hashes` cells.
  void add(std::uint64_t item) noexcept;

  // The cell indices that add(item) would increment (size == hashes()).
  std::vector<std::size_t> cell_indices(std::uint64_t item) const;

  // Componentwise comparison — the Bloom Clock partial order.
  ClockOrder compare(const BloomClock& other) const noexcept;

  // True iff every counter of this clock is <= the corresponding counter of
  // `other` (i.e. this could be a causal prefix of other).
  bool dominated_by(const BloomClock& other) const noexcept;

  // Sum over cells of |a_i - b_i|; divided by `hashes` this estimates the
  // symmetric-difference size between the two underlying sets (upper bound
  // estimate used to pick reconciliation partitioning).
  std::uint64_t l1_distance(const BloomClock& other) const noexcept;

  // SREP-style symmetric-difference estimate in *items*: the L1 distance
  // scaled by the hash count. This is the number callers feed to
  // sketch::adaptive_capacity to size a reconciliation round.
  std::uint64_t estimate_difference(const BloomClock& other) const noexcept {
    return l1_distance(other) / (hashes_ == 0 ? 1 : hashes_);
  }

  // Total number of insertions (sum of counters / hashes).
  std::uint64_t population() const noexcept;

  // Cell-wise sum, the join of the two clocks' histories.
  void merge(const BloomClock& other);

  bool operator==(const BloomClock& other) const = default;

  // Wire format: u16 cell count, u16 hash count, then u16 per cell
  // (saturating at 65535); 32 cells => 4 + 64 = 68 bytes, as in the paper.
  std::size_t serialized_size() const noexcept { return 4 + 2 * counters_.size(); }
  std::vector<std::uint8_t> serialize() const;
  static std::optional<BloomClock> deserialize(std::span<const std::uint8_t> data);

  const std::vector<std::uint32_t>& counters() const noexcept { return counters_; }

 private:
  std::vector<std::uint32_t> counters_;
  unsigned hashes_;
};

}  // namespace lo::bloom
