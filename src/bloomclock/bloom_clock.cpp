#include "bloomclock/bloom_clock.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace lo::bloom {

BloomClock::BloomClock(std::size_t cells, unsigned hashes)
    : counters_(cells, 0), hashes_(hashes) {
  if (cells == 0 || hashes == 0) {
    throw std::invalid_argument("bloom clock needs cells >= 1, hashes >= 1");
  }
}

void BloomClock::add(std::uint64_t item) noexcept {
  // Double hashing: h_i = h1 + i*h2, the standard Kirsch–Mitzenmacher scheme.
  std::uint64_t s = item;
  const std::uint64_t h1 = util::splitmix64(s);
  const std::uint64_t h2 = util::splitmix64(s) | 1;
  for (unsigned i = 0; i < hashes_; ++i) {
    const std::uint64_t h = h1 + static_cast<std::uint64_t>(i) * h2;
    ++counters_[h % counters_.size()];
  }
}

std::vector<std::size_t> BloomClock::cell_indices(std::uint64_t item) const {
  std::vector<std::size_t> out;
  out.reserve(hashes_);
  std::uint64_t s = item;
  const std::uint64_t h1 = util::splitmix64(s);
  const std::uint64_t h2 = util::splitmix64(s) | 1;
  for (unsigned i = 0; i < hashes_; ++i) {
    const std::uint64_t h = h1 + static_cast<std::uint64_t>(i) * h2;
    out.push_back(h % counters_.size());
  }
  return out;
}

ClockOrder BloomClock::compare(const BloomClock& other) const noexcept {
  bool some_less = false;
  bool some_greater = false;
  const std::size_t n = counters_.size();
  for (std::size_t i = 0; i < n && i < other.counters_.size(); ++i) {
    if (counters_[i] < other.counters_[i]) some_less = true;
    if (counters_[i] > other.counters_[i]) some_greater = true;
  }
  if (!some_less && !some_greater) return ClockOrder::kEqual;
  if (some_less && some_greater) return ClockOrder::kConcurrent;
  return some_less ? ClockOrder::kBefore : ClockOrder::kAfter;
}

bool BloomClock::dominated_by(const BloomClock& other) const noexcept {
  const ClockOrder o = compare(other);
  return o == ClockOrder::kEqual || o == ClockOrder::kBefore;
}

std::uint64_t BloomClock::l1_distance(const BloomClock& other) const noexcept {
  std::uint64_t sum = 0;
  const std::size_t n = counters_.size();
  for (std::size_t i = 0; i < n && i < other.counters_.size(); ++i) {
    const std::uint32_t a = counters_[i];
    const std::uint32_t b = other.counters_[i];
    sum += (a > b) ? (a - b) : (b - a);
  }
  return sum;
}

std::uint64_t BloomClock::population() const noexcept {
  std::uint64_t sum = 0;
  for (auto c : counters_) sum += c;
  return sum / hashes_;
}

void BloomClock::merge(const BloomClock& other) {
  if (other.counters_.size() != counters_.size() || other.hashes_ != hashes_) {
    throw std::invalid_argument("bloom clock parameter mismatch");
  }
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

std::vector<std::uint8_t> BloomClock::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(serialized_size());
  auto push16 = [&out](std::uint32_t v) {
    const std::uint16_t x = v > 0xffff ? 0xffff : static_cast<std::uint16_t>(v);
    out.push_back(static_cast<std::uint8_t>(x & 0xff));
    out.push_back(static_cast<std::uint8_t>(x >> 8));
  };
  push16(static_cast<std::uint32_t>(counters_.size()));
  push16(hashes_);
  for (auto c : counters_) push16(c);
  return out;
}

std::optional<BloomClock> BloomClock::deserialize(std::span<const std::uint8_t> data) {
  if (data.size() < 4) return std::nullopt;
  auto read16 = [&data](std::size_t off) {
    return static_cast<std::uint16_t>(data[off] | (data[off + 1] << 8));
  };
  const std::uint16_t cells = read16(0);
  const std::uint16_t hashes = read16(2);
  if (cells == 0 || hashes == 0) return std::nullopt;
  if (data.size() != 4u + 2u * cells) return std::nullopt;
  BloomClock c(cells, hashes);
  for (std::size_t i = 0; i < cells; ++i) {
    c.counters_[i] = read16(4 + 2 * i);
  }
  return c;
}

}  // namespace lo::bloom
