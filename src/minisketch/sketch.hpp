// PinSketch set sketches (Dodis et al. [15], Naumenko et al. "Erlay" /
// Minisketch [29]) — the commitment and reconciliation codec of LØ (Sec. 4.2).
//
// A sketch of capacity c over GF(2^m) is the vector of odd power sums
//   s_k = sum_{x in S} x^(2k+1),   k = 0 .. c-1.
// XOR of two sketches is the sketch of the symmetric difference, which can be
// decoded as long as |A △ B| <= c. Decoding reconstructs the even syndromes
// via the Frobenius identity s_2j = s_j^2, runs Berlekamp–Massey to find the
// locator polynomial, and recovers the difference as the locator's roots.
//
// Sketches reference shared immutable Field instances (Field::get), so a
// sketch is just its syndrome vector: copies are cheap and the ~17 KB of
// field tables are built once per process. Decoding goes through a reusable
// Decoder workspace; Sketch::decode() uses a sketch-layer thread-local one,
// so steady-state decodes are allocation-free apart from the result vector.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "gf/berlekamp_massey.hpp"
#include "gf/gf2m.hpp"
#include "gf/root_find.hpp"

namespace lo::sketch {

class Sketch {
 public:
  // capacity = maximum recoverable symmetric-difference size; bits = field
  // size m (elements are nonzero m-bit values). The field comes from the
  // shared Field::get(bits) registry.
  Sketch(unsigned bits, std::size_t capacity);

  // Same, over an explicit field (e.g. Field::get_reference(m) for
  // differential tests and before/after benches). `field` must outlive the
  // sketch and every copy of it; registry instances always do.
  Sketch(const gf::Field& field, std::size_t capacity);

  unsigned bits() const noexcept { return field_->bits(); }
  std::size_t capacity() const noexcept { return syndromes_.size(); }

  // Adds (or, by the XOR structure, removes) a raw 64-bit item; the item is
  // hashed into a nonzero field element via Field::map_nonzero. Returns the
  // mapped element so callers indexing by element (preimage maps, resolve
  // tables) don't recompute the map — a 64-bit division — per item.
  std::uint64_t add(std::uint64_t raw_item);

  // Adds an element that is already a nonzero field element.
  void add_element(std::uint64_t element);

  // Batched add: one pass over the syndromes per block of items, with the
  // per-item power chains interleaved so the field multiplies pipeline
  // instead of serializing on one chain's latency.
  void add_all(std::span<const std::uint64_t> raw_items);

  // Combines with another sketch of identical parameters: the result encodes
  // the symmetric difference of the two underlying sets.
  void merge(const Sketch& other);

  // PinSketch sketches are prefix-truncatable: the first k syndromes of a
  // capacity-c sketch ARE the capacity-k sketch of the same set. This lets a
  // node maintain one large sketch and transmit only as many syndromes as
  // the estimated set difference requires — the key to LØ's bandwidth
  // efficiency (Sec. 6.4). new_capacity > capacity() keeps the original;
  // new_capacity == 0 throws, matching the constructor.
  Sketch truncated(std::size_t new_capacity) const;

  // Decodes the set difference. Returns the elements if at most `capacity`
  // differences exist (with overwhelming probability detects overflow and
  // returns nullopt instead of garbage).
  std::optional<std::vector<std::uint64_t>> decode() const;

  bool is_zero() const noexcept;
  void clear() noexcept;

  // Wire format: capacity * ceil(bits/8) bytes, little-endian per syndrome.
  std::size_t serialized_size() const noexcept;
  std::vector<std::uint8_t> serialize() const;
  static Sketch deserialize(unsigned bits, std::size_t capacity,
                            std::span<const std::uint8_t> data);

  const std::vector<std::uint64_t>& syndromes() const noexcept { return syndromes_; }
  const gf::Field& field() const noexcept { return *field_; }

 private:
  const gf::Field* field_;  // shared immutable instance, never null
  std::vector<std::uint64_t> syndromes_;
};

// Reusable decode workspace: full-syndrome expansion, Berlekamp–Massey
// buffers, root-finder workspace and the overflow-check syndromes all keep
// their capacity between calls. decode() results are identical to
// Sketch::decode() — which delegates to a thread-local Decoder — byte for
// byte; owning one explicitly just pins the buffer reuse to a call site.
class Decoder {
 public:
  std::optional<std::vector<std::uint64_t>> decode(const Sketch& s);

  // Retained capacity of the syndrome-expansion buffer (elements). This is
  // the workspace's dominant allocation and what the high-water clamp
  // manages; exposed so the clamp behavior is testable.
  std::size_t workspace_capacity() const noexcept { return syn_.capacity(); }

 private:
  // One oversized decode (e.g. a full-capacity partitioned escalation) must
  // not pin its peak allocation for the life of the thread-local decoder:
  // every kClampWindow decodes, if the retained buffers exceed kClampSlack
  // times what the window's largest request needed, the workspace is
  // released back down to that high-water mark.
  static constexpr std::size_t kClampWindow = 64;
  static constexpr std::size_t kClampSlack = 4;
  void clamp_workspace(std::size_t capacity);

  std::vector<std::uint64_t> syn_;    // S_1 .. S_2c (odd stored, even derived)
  gf::BmWorkspace bm_;
  gf::Poly recip_;                    // reciprocal locator
  gf::RootWorkspace roots_;
  std::vector<std::uint64_t> found_;  // roots scratch
  std::vector<std::uint64_t> check_;  // recomputed syndromes (overflow check)
  std::size_t window_high_water_ = 0;  // largest capacity seen this window
  std::size_t decodes_in_window_ = 0;
};

}  // namespace lo::sketch
