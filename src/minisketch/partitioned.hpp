// Hash-partitioned set reconciliation — the Sec. 6.5 optimization of LØ,
// following the PBS idea of Gong et al. [19]: if decoding a sketch of the
// full sets fails (difference larger than the sketch capacity), split both
// sets into two halves by a hash bit and recurse with one sketch per half.
//
// The paper reports that this turns a ~10 s decode of a 1,000-element
// difference into <100 ms worth of small decodes; bench_minisketch reproduces
// the shape of that comparison.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "minisketch/sketch.hpp"

namespace lo::sketch {

struct ReconcileStats {
  std::size_t sketches_used = 0;   // total sketches transmitted
  std::size_t bytes = 0;           // total sketch bytes transmitted
  std::size_t rounds = 0;          // partition depth reached (0 = first try)
  std::size_t decode_failures = 0; // failed decode attempts along the way
};

// Deterministic partition assignment: both reconciling parties must place a
// raw item into the same half at each depth, so the split key is a hash of
// the raw item, indexed by depth.
bool partition_bit(std::uint64_t raw_item, unsigned depth);

// Shared SREP-style sketch sizing: capacity for an estimated symmetric
// difference (e.g. the Bloom-clock L1 estimate). A 2x margin plus slack
// absorbs estimator error; the result is clamped to [8, max_capacity]. Both
// the wire-sketch prefix (core::LoNode) and AdaptiveReconciler size through
// this one function, so the two layers stay consistent.
std::size_t adaptive_capacity(std::size_t diff_estimate,
                              std::size_t max_capacity) noexcept;

class PartitionedReconciler {
 public:
  PartitionedReconciler(unsigned bits, std::size_t capacity,
                        unsigned max_depth = 24)
      : bits_(bits), capacity_(capacity), max_depth_(max_depth) {}

  // Computes the symmetric difference of two raw-item sets the way the
  // protocol would: sketch both, merge, decode; on failure split and recurse.
  // Returns the differing *raw items* (resolved back from field elements by
  // membership lookup), or nullopt if max_depth was exhausted.
  std::optional<std::vector<std::uint64_t>> reconcile(
      std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
      ReconcileStats* stats = nullptr) const;

 private:
  bool recurse(std::span<const std::uint64_t> a,
               std::span<const std::uint64_t> b, unsigned depth,
               ReconcileStats& stats, std::vector<std::uint64_t>& out) const;

  unsigned bits_;
  std::size_t capacity_;
  unsigned max_depth_;
};

// SREP-style adaptive reconciliation: size the first sketch to the estimated
// difference instead of a fixed capacity, so small diffs pay few syndrome
// bytes and large diffs decode in one round instead of splitting. A failed
// adaptive decode (estimator error) falls back to the hash-partitioned
// splitter at full capacity — correctness never depends on the estimate.
// The recovered raw-item set is identical to PartitionedReconciler's for any
// estimate (the symmetric difference is unique); only the cost differs.
class AdaptiveReconciler {
 public:
  AdaptiveReconciler(unsigned bits, std::size_t max_capacity,
                     unsigned max_depth = 24)
      : bits_(bits), max_capacity_(max_capacity), max_depth_(max_depth) {}

  // `diff_estimate` is the caller's symmetric-difference estimate (Bloom
  // clock: a.estimate_difference(b)); 0 means "no information" and sizes
  // minimally, relying on the fallback if that proves too small.
  std::optional<std::vector<std::uint64_t>> reconcile(
      std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
      std::size_t diff_estimate, ReconcileStats* stats = nullptr) const;

  // Sharded adaptive reconciliation (DESIGN.md §7): bucket both raw-item
  // sets with `shard_of` (which must agree on both sides, like
  // partition_bit) and run one independently sized round per shard, each
  // using that shard's own difference estimate instead of one global
  // estimate clamped at max_capacity. shard_estimates.size() fixes the shard
  // count; shard_of must return values below it. Per-shard sizing is the
  // point: a global estimate D costs O(adaptive_capacity(D)) syndrome bytes
  // in every exchange, while k shards each seeing ~D/k pay
  // k * adaptive_capacity(D/k) — strictly fewer bytes once D/k clears the
  // sizing floor. Stats accumulate across shards; failure of any shard
  // fails the whole call (correctness still never depends on estimates).
  std::optional<std::vector<std::uint64_t>> reconcile_shards(
      std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
      const std::function<std::uint32_t(std::uint64_t)>& shard_of,
      std::span<const std::size_t> shard_estimates,
      ReconcileStats* stats = nullptr) const;

 private:
  unsigned bits_;
  std::size_t max_capacity_;
  unsigned max_depth_;
};

}  // namespace lo::sketch
