#include "minisketch/partitioned.hpp"

#include <unordered_map>

#include "obs/profile.hpp"
#include "util/rng.hpp"

namespace lo::sketch {

bool partition_bit(std::uint64_t raw_item, unsigned depth) {
  std::uint64_t s = raw_item ^ (0xa5a5a5a5a5a5a5a5ULL + depth);
  return (util::splitmix64(s) & 1) != 0;
}

std::size_t adaptive_capacity(std::size_t diff_estimate,
                              std::size_t max_capacity) noexcept {
  const std::size_t sized = 2 * diff_estimate + 4;
  const std::size_t floored = sized < 8 ? 8 : sized;
  return floored > max_capacity ? max_capacity : floored;
}

std::optional<std::vector<std::uint64_t>> AdaptiveReconciler::reconcile(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    std::size_t diff_estimate, ReconcileStats* stats) const {
  obs::ScopedProfile prof(obs::ProfileSite::kReconcileRound,
                          a.size() + b.size());
  ReconcileStats local;
  const std::size_t cap = adaptive_capacity(diff_estimate, max_capacity_);

  Sketch sa(bits_, cap);
  Sketch sb(bits_, cap);
  std::unordered_map<std::uint64_t, std::uint64_t> preimage;
  // lolint:allow(hot-path-alloc) reason=one sized reserve per reconcile round; the preimage map is the round's result scratch, not per-element churn
  preimage.reserve(a.size() + b.size());
  for (auto raw : a) preimage.emplace(sa.add(raw), raw);
  for (auto raw : b) preimage.emplace(sb.add(raw), raw);
  sa.merge(sb);
  local.sketches_used += 2;
  local.bytes += 2 * sa.serialized_size();

  if (auto elems = sa.decode()) {
    std::vector<std::uint64_t> out;
    // lolint:allow(hot-path-alloc) reason=exact-size reserve for the returned difference set; allocation is the function's output, not churn
    out.reserve(elems->size());
    bool ok = true;
    for (auto e : *elems) {
      auto it = preimage.find(e);
      if (it == preimage.end()) {
        ok = false;  // decode produced a non-member: treat as a failure
        break;
      }
      // lolint:allow(hot-path-alloc) reason=append into the exact-size reserved result vector; never reallocates
      out.push_back(it->second);
    }
    if (ok) {
      if (stats != nullptr) *stats = local;
      return out;
    }
  }

  // The estimate was too small (or the decode was corrupt): escalate to the
  // fixed full-capacity partitioned path, whose first attempt at
  // max_capacity_ is the natural next rung of the ladder.
  ++local.decode_failures;
  ReconcileStats fb;
  auto out = PartitionedReconciler(bits_, max_capacity_, max_depth_)
                 .reconcile(a, b, &fb);
  local.sketches_used += fb.sketches_used;
  local.bytes += fb.bytes;
  local.rounds = fb.rounds > local.rounds ? fb.rounds : local.rounds;
  local.decode_failures += fb.decode_failures;
  if (stats != nullptr) *stats = local;
  return out;
}

std::optional<std::vector<std::uint64_t>> AdaptiveReconciler::reconcile_shards(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    const std::function<std::uint32_t(std::uint64_t)>& shard_of,
    std::span<const std::size_t> shard_estimates, ReconcileStats* stats) const {
  const std::size_t k = shard_estimates.empty() ? 1 : shard_estimates.size();
  std::vector<std::vector<std::uint64_t>> as(k), bs(k);
  for (auto raw : a) {
    const std::uint32_t s = shard_of(raw);
    as[s < k ? s : k - 1].push_back(raw);
  }
  for (auto raw : b) {
    const std::uint32_t s = shard_of(raw);
    bs[s < k ? s : k - 1].push_back(raw);
  }
  ReconcileStats total;
  std::vector<std::uint64_t> out;
  for (std::size_t s = 0; s < k; ++s) {
    ReconcileStats round;
    const std::size_t est = shard_estimates.empty() ? 0 : shard_estimates[s];
    auto diff = reconcile(as[s], bs[s], est, &round);
    total.sketches_used += round.sketches_used;
    total.bytes += round.bytes;
    total.rounds = round.rounds > total.rounds ? round.rounds : total.rounds;
    total.decode_failures += round.decode_failures;
    if (!diff) {
      if (stats != nullptr) *stats = total;
      return std::nullopt;
    }
    out.insert(out.end(), diff->begin(), diff->end());
  }
  if (stats != nullptr) *stats = total;
  return out;
}

std::optional<std::vector<std::uint64_t>> PartitionedReconciler::reconcile(
    std::span<const std::uint64_t> a, std::span<const std::uint64_t> b,
    ReconcileStats* stats) const {
  obs::ScopedProfile prof(obs::ProfileSite::kReconcileRound,
                          a.size() + b.size());
  ReconcileStats local;
  std::vector<std::uint64_t> out;
  const bool ok = recurse(a, b, 0, local, out);
  if (stats != nullptr) *stats = local;
  if (!ok) return std::nullopt;
  return out;
}

bool PartitionedReconciler::recurse(std::span<const std::uint64_t> a,
                                    std::span<const std::uint64_t> b,
                                    unsigned depth, ReconcileStats& stats,
                                    std::vector<std::uint64_t>& out) const {
  Sketch sa(bits_, capacity_);
  Sketch sb(bits_, capacity_);
  // Field elements are a many-to-one image of raw items; remember the
  // preimages so decoded elements can be mapped back. Items appearing in both
  // sets cancel inside the merged sketch and never need resolving. add()
  // returns the mapped element, so each raw item pays its map_nonzero
  // division exactly once.
  std::unordered_map<std::uint64_t, std::uint64_t> preimage;
  preimage.reserve(a.size() + b.size());
  for (auto raw : a) {
    preimage.emplace(sa.add(raw), raw);
  }
  for (auto raw : b) {
    preimage.emplace(sb.add(raw), raw);
  }
  sa.merge(sb);
  stats.sketches_used += 2;  // one transmitted per side
  stats.bytes += 2 * sa.serialized_size();
  if (depth > stats.rounds) stats.rounds = depth;

  if (auto elems = sa.decode()) {
    for (auto e : *elems) {
      auto it = preimage.find(e);
      if (it == preimage.end()) return false;  // decode produced a non-member
      out.push_back(it->second);
    }
    return true;
  }

  ++stats.decode_failures;
  if (depth >= max_depth_) return false;

  std::vector<std::uint64_t> a0, a1, b0, b1;
  for (auto raw : a) (partition_bit(raw, depth) ? a1 : a0).push_back(raw);
  for (auto raw : b) (partition_bit(raw, depth) ? b1 : b0).push_back(raw);
  return recurse(a0, b0, depth + 1, stats, out) &&
         recurse(a1, b1, depth + 1, stats, out);
}

}  // namespace lo::sketch
