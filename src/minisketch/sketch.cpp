#include "minisketch/sketch.hpp"

#include <stdexcept>

#include "gf/berlekamp_massey.hpp"
#include "gf/poly.hpp"
#include "gf/root_find.hpp"

namespace lo::sketch {

Sketch::Sketch(unsigned bits, std::size_t capacity)
    : field_(bits), syndromes_(capacity, 0) {
  if (capacity == 0) throw std::invalid_argument("sketch capacity must be > 0");
}

void Sketch::add(std::uint64_t raw_item) {
  add_element(field_.map_nonzero(raw_item));
}

void Sketch::add_element(std::uint64_t element) {
  // Incremental update: s_k += element^(2k+1). Uses p *= element^2 stepping.
  const std::uint64_t e2 = field_.sqr(element);
  std::uint64_t p = element;
  for (auto& s : syndromes_) {
    s ^= p;
    p = field_.mul(p, e2);
  }
}

void Sketch::merge(const Sketch& other) {
  if (other.bits() != bits() || other.capacity() != capacity()) {
    throw std::invalid_argument("sketch parameter mismatch");
  }
  for (std::size_t i = 0; i < syndromes_.size(); ++i) {
    syndromes_[i] ^= other.syndromes_[i];
  }
}

Sketch Sketch::truncated(std::size_t new_capacity) const {
  if (new_capacity == 0) new_capacity = 1;
  if (new_capacity >= syndromes_.size()) return *this;
  Sketch out(bits(), new_capacity);
  for (std::size_t i = 0; i < new_capacity; ++i) {
    out.syndromes_[i] = syndromes_[i];
  }
  return out;
}

bool Sketch::is_zero() const noexcept {
  for (auto s : syndromes_) {
    if (s != 0) return false;
  }
  return true;
}

void Sketch::clear() noexcept {
  for (auto& s : syndromes_) s = 0;
}

std::optional<std::vector<std::uint64_t>> Sketch::decode() const {
  if (is_zero()) return std::vector<std::uint64_t>{};

  const std::size_t c = syndromes_.size();
  // Full syndrome sequence S_1 .. S_2c: odd entries are stored, even entries
  // derived via Frobenius (S_2j = S_j^2).
  std::vector<std::uint64_t> s(2 * c, 0);
  for (std::size_t k = 0; k < c; ++k) s[2 * k] = syndromes_[k];  // S_{2k+1}
  for (std::size_t j = 1; 2 * j <= 2 * c; ++j) {
    s[2 * j - 1] = field_.sqr(s[j - 1]);  // S_{2j} = S_j^2
  }

  gf::Poly locator = gf::berlekamp_massey(field_, s);
  const int t = gf::poly_deg(locator);
  if (t <= 0 || static_cast<std::size_t>(t) > c) return std::nullopt;

  // The locator is Lambda(x) = prod (1 - X_i x); its reciprocal
  // x^t Lambda(1/x) = prod (x - X_i) has the difference elements as roots.
  gf::Poly recip(locator.rbegin(), locator.rend());
  gf::poly_trim(recip);
  if (gf::poly_deg(recip) != t) {
    // Lambda had a zero constant term — impossible for a valid locator.
    return std::nullopt;
  }

  // Deterministic root finding seeded from the syndromes for reproducibility.
  std::uint64_t seed = 0x5eed;
  for (auto v : syndromes_) seed = seed * 0x100000001b3ULL ^ v;
  auto roots = gf::find_roots(field_, std::move(recip), seed);
  if (!roots) return std::nullopt;

  // Overflow detection: verify that the recovered set reproduces all stored
  // syndromes. (When |diff| > capacity BM can still emit a degree-<=c
  // polynomial; this check rejects such spurious decodes.)
  Sketch check(bits(), capacity());
  for (auto r : *roots) {
    if (r == 0) return std::nullopt;
    check.add_element(r);
  }
  for (std::size_t i = 0; i < c; ++i) {
    if (check.syndromes_[i] != syndromes_[i]) return std::nullopt;
  }
  return roots;
}

std::size_t Sketch::serialized_size() const noexcept {
  const std::size_t bytes_per = (field_.bits() + 7) / 8;
  return syndromes_.size() * bytes_per;
}

std::vector<std::uint8_t> Sketch::serialize() const {
  const std::size_t bytes_per = (field_.bits() + 7) / 8;
  std::vector<std::uint8_t> out;
  out.reserve(serialized_size());
  for (auto s : syndromes_) {
    for (std::size_t b = 0; b < bytes_per; ++b) {
      out.push_back(static_cast<std::uint8_t>(s >> (8 * b)));
    }
  }
  return out;
}

Sketch Sketch::deserialize(unsigned bits, std::size_t capacity,
                           std::span<const std::uint8_t> data) {
  Sketch sk(bits, capacity);
  const std::size_t bytes_per = (bits + 7) / 8;
  if (data.size() != capacity * bytes_per) {
    throw std::invalid_argument("sketch byte length mismatch");
  }
  for (std::size_t i = 0; i < capacity; ++i) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < bytes_per; ++b) {
      v |= static_cast<std::uint64_t>(data[i * bytes_per + b]) << (8 * b);
    }
    sk.syndromes_[i] = v;
  }
  return sk;
}

}  // namespace lo::sketch
