#include "minisketch/sketch.hpp"

#include <stdexcept>

#include "gf/poly.hpp"
#include "obs/profile.hpp"

namespace lo::sketch {

Sketch::Sketch(unsigned bits, std::size_t capacity)
    : Sketch(gf::Field::get(bits), capacity) {}

Sketch::Sketch(const gf::Field& field, std::size_t capacity)
    : field_(&field), syndromes_(capacity, 0) {
  if (capacity == 0) throw std::invalid_argument("sketch capacity must be > 0");
}

std::uint64_t Sketch::add(std::uint64_t raw_item) {
  const std::uint64_t element = field_->map_nonzero(raw_item);
  add_element(element);
  return element;
}

void Sketch::add_element(std::uint64_t element) {
  // Incremental update: s_k += element^(2k+1). Uses p *= element^2 stepping.
  const gf::Field& f = *field_;
  const std::uint64_t e2 = f.sqr(element);
  std::uint64_t p = element;
  for (auto& s : syndromes_) {
    s ^= p;
    p = f.mul(p, e2);
  }
}

void Sketch::add_all(std::span<const std::uint64_t> raw_items) {
  obs::ScopedProfile prof(obs::ProfileSite::kSketchAddAll, raw_items.size());
  // Process items in blocks: the outer loop walks the syndromes once per
  // block while the inner loop advances kBlock independent power chains, so
  // the multiplies of different items overlap instead of each item waiting
  // out its own serial p *= e^2 chain.
  constexpr std::size_t kBlock = 8;
  const gf::Field& f = *field_;
  std::size_t i = 0;
  for (; i + kBlock <= raw_items.size(); i += kBlock) {
    std::uint64_t p[kBlock];
    std::uint64_t e2[kBlock];
    for (std::size_t j = 0; j < kBlock; ++j) {
      p[j] = f.map_nonzero(raw_items[i + j]);
      e2[j] = f.sqr(p[j]);
    }
    for (auto& s : syndromes_) {
      std::uint64_t acc = 0;
      for (std::size_t j = 0; j < kBlock; ++j) acc ^= p[j];
      s ^= acc;
      f.mul_many(p, e2, kBlock);
    }
  }
  for (; i < raw_items.size(); ++i) add(raw_items[i]);
}

void Sketch::merge(const Sketch& other) {
  if (other.bits() != bits() || other.capacity() != capacity()) {
    throw std::invalid_argument("sketch parameter mismatch");
  }
  for (std::size_t i = 0; i < syndromes_.size(); ++i) {
    syndromes_[i] ^= other.syndromes_[i];
  }
}

Sketch Sketch::truncated(std::size_t new_capacity) const {
  if (new_capacity == 0) {
    throw std::invalid_argument("sketch capacity must be > 0");
  }
  if (new_capacity >= syndromes_.size()) return *this;
  Sketch out(*field_, new_capacity);
  for (std::size_t i = 0; i < new_capacity; ++i) {
    out.syndromes_[i] = syndromes_[i];
  }
  return out;
}

bool Sketch::is_zero() const noexcept {
  for (auto s : syndromes_) {
    if (s != 0) return false;
  }
  return true;
}

void Sketch::clear() noexcept {
  for (auto& s : syndromes_) s = 0;
}

std::optional<std::vector<std::uint64_t>> Sketch::decode() const {
  // The sketch layer owns one Decoder per thread: every decode entry point
  // (node reconciliation, consistency checks, the partitioned reconciler)
  // shares its warmed-up buffers, so steady-state decoding is allocation-free
  // apart from the returned vector.
  // lolint:allow(thread-local-protocol) reason=per-thread decode workspace is the documented exception; capacity is clamped by Decoder::decode's high-water check
  thread_local Decoder decoder;
  return decoder.decode(*this);
}

void Decoder::clamp_workspace(std::size_t capacity) {
  if (capacity > window_high_water_) window_high_water_ = capacity;
  if (++decodes_in_window_ < kClampWindow) return;
  // syn_ holds the expanded sequence S_1 .. S_2c, so a capacity-c request
  // needs 2c elements; the other buffers scale with c or smaller.
  const std::size_t needed = 2 * window_high_water_;
  if (syn_.capacity() > kClampSlack * needed) {
    std::vector<std::uint64_t>().swap(syn_);
    syn_.reserve(needed);
    gf::Poly().swap(recip_);
    std::vector<std::uint64_t>().swap(found_);
    std::vector<std::uint64_t>().swap(check_);
    bm_ = gf::BmWorkspace{};
    roots_ = gf::RootWorkspace{};
  }
  window_high_water_ = 0;
  decodes_in_window_ = 0;
}

std::optional<std::vector<std::uint64_t>> Decoder::decode(const Sketch& sk) {
  obs::ScopedProfile prof(obs::ProfileSite::kSketchDecode, sk.capacity());
  clamp_workspace(sk.capacity());
  if (sk.is_zero()) return std::vector<std::uint64_t>{};

  const gf::Field& field = sk.field();
  const auto& syndromes = sk.syndromes();
  const std::size_t c = syndromes.size();
  // Full syndrome sequence S_1 .. S_2c: odd entries are stored, even entries
  // derived via Frobenius (S_2j = S_j^2).
  syn_.assign(2 * c, 0);
  for (std::size_t k = 0; k < c; ++k) syn_[2 * k] = syndromes[k];  // S_{2k+1}
  for (std::size_t j = 1; 2 * j <= 2 * c; ++j) {
    syn_[2 * j - 1] = field.sqr(syn_[j - 1]);  // S_{2j} = S_j^2
  }

  const gf::Poly& locator = gf::berlekamp_massey(field, syn_, bm_);
  const int t = gf::poly_deg(locator);
  if (t <= 0 || static_cast<std::size_t>(t) > c) return std::nullopt;

  // The locator is Lambda(x) = prod (1 - X_i x); its reciprocal
  // x^t Lambda(1/x) = prod (x - X_i) has the difference elements as roots.
  recip_.assign(locator.rbegin(), locator.rend());
  gf::poly_trim(recip_);
  if (gf::poly_deg(recip_) != t) {
    // Lambda had a zero constant term — impossible for a valid locator.
    return std::nullopt;
  }

  // Deterministic root finding seeded from the syndromes for reproducibility.
  std::uint64_t seed = 0x5eed;
  for (auto v : syndromes) seed = seed * 0x100000001b3ULL ^ v;
  if (!gf::find_roots_ws(field, recip_, seed, roots_, found_)) {
    return std::nullopt;
  }

  // Overflow detection: verify that the recovered set reproduces all stored
  // syndromes. (When |diff| > capacity BM can still emit a degree-<=c
  // polynomial; this check rejects such spurious decodes.)
  for (auto r : found_) {
    if (r == 0) return std::nullopt;
  }
  check_.assign(c, 0);
  constexpr std::size_t kBlock = 8;
  std::size_t r = 0;
  for (; r + kBlock <= found_.size(); r += kBlock) {
    std::uint64_t p[kBlock];
    std::uint64_t e2[kBlock];
    for (std::size_t j = 0; j < kBlock; ++j) {
      p[j] = found_[r + j];
      e2[j] = field.sqr(p[j]);
    }
    for (auto& s : check_) {
      std::uint64_t acc = 0;
      for (std::size_t j = 0; j < kBlock; ++j) acc ^= p[j];
      s ^= acc;
      field.mul_many(p, e2, kBlock);
    }
  }
  for (; r < found_.size(); ++r) {
    const std::uint64_t e2 = field.sqr(found_[r]);
    std::uint64_t p = found_[r];
    for (auto& s : check_) {
      s ^= p;
      p = field.mul(p, e2);
    }
  }
  for (std::size_t i = 0; i < c; ++i) {
    if (check_[i] != syndromes[i]) return std::nullopt;
  }
  return std::vector<std::uint64_t>(found_.begin(), found_.end());
}

std::size_t Sketch::serialized_size() const noexcept {
  const std::size_t bytes_per = (field_->bits() + 7) / 8;
  return syndromes_.size() * bytes_per;
}

std::vector<std::uint8_t> Sketch::serialize() const {
  const std::size_t bytes_per = (field_->bits() + 7) / 8;
  std::vector<std::uint8_t> out;
  out.reserve(serialized_size());
  for (auto s : syndromes_) {
    for (std::size_t b = 0; b < bytes_per; ++b) {
      out.push_back(static_cast<std::uint8_t>(s >> (8 * b)));
    }
  }
  return out;
}

Sketch Sketch::deserialize(unsigned bits, std::size_t capacity,
                           std::span<const std::uint8_t> data) {
  Sketch sk(bits, capacity);
  const std::size_t bytes_per = (bits + 7) / 8;
  if (data.size() != capacity * bytes_per) {
    throw std::invalid_argument("sketch byte length mismatch");
  }
  for (std::size_t i = 0; i < capacity; ++i) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < bytes_per; ++b) {
      v |= static_cast<std::uint64_t>(data[i * bytes_per + b]) << (8 * b);
    }
    sk.syndromes_[i] = v;
  }
  return sk;
}

}  // namespace lo::sketch
