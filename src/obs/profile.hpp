// Zero-cost-when-disabled scoped profiling hooks (observability layer,
// part 4).
//
// Hot paths (Ed25519 verify, sketch decode, reconcile rounds) are annotated
// with ScopedProfile markers that count calls and work items into a global
// fixed-size table. The counters are *deterministic* — they count work, not
// time (no clocks anywhere in src/obs/; lolint enforces it) — so profiling
// can stay on in determinism tests. When disabled (the default) the entire
// cost is one load + predictable branch per site; the bench guard
// (BENCH_obs.json) proves the disabled path is within noise.
//
// The table is process-global rather than per-registry because the hooks sit
// in layers (crypto, gf) that know nothing about which simulation is
// running; publish() copies the table into a Registry for export.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace lo::obs {

class Registry;

enum class ProfileSite : std::size_t {
  kEd25519Verify = 0,
  kEd25519Sign,
  kSketchDecode,
  kSketchAddAll,
  kReconcileRound,
  kVerifyCacheProbe,
  kCount,
};

const char* profile_site_name(ProfileSite s) noexcept;

struct ProfileCounters {
  std::uint64_t calls = 0;
  std::uint64_t items = 0;  // site-defined work units (bytes, elements, ...)
};

namespace profile {

// Relaxed atomic slots: the instrumented sites (verify, decode, reconcile)
// run inside worker-sharded simulator events, so several workers may hit the
// same site concurrently. Counts are pure sums — commutative — so relaxed
// increments keep the published totals deterministic for a given seed no
// matter how the workers interleave, and publish() (coordinator-only) reads
// settled values across the window barrier.
struct AtomicProfileCounters {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> items{0};
};

// lolint:allow(mutable-static) reason=process-global profile table; slots are relaxed atomics so worker hits commute and publish() merges settled sums
extern bool g_enabled;
// lolint:allow(mutable-static) reason=process-global profile table; slots are relaxed atomics so worker hits commute and publish() merges settled sums
extern std::array<AtomicProfileCounters,
                  static_cast<std::size_t>(ProfileSite::kCount)>
    g_counters;

inline void hit(ProfileSite s, std::uint64_t items = 1) noexcept {
  if (!g_enabled) return;  // the entire cost when profiling is off
  auto& c = g_counters[static_cast<std::size_t>(s)];
  c.calls.fetch_add(1, std::memory_order_relaxed);
  c.items.fetch_add(items, std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;
bool enabled() noexcept;
void reset() noexcept;
ProfileCounters counters(ProfileSite s) noexcept;

// Copies the table into `reg` as profile.calls{site=...} /
// profile.items{site=...} counters (cumulative totals, idempotent via
// assignment rather than addition).
void publish(Registry& reg);

}  // namespace profile

// RAII marker: charges the site on destruction, so a scope with early
// returns is counted exactly once, after the work it measures.
class ScopedProfile {
 public:
  explicit ScopedProfile(ProfileSite site, std::uint64_t items = 1) noexcept
      : site_(site), items_(items) {}
  ScopedProfile(const ScopedProfile&) = delete;
  ScopedProfile& operator=(const ScopedProfile&) = delete;
  ~ScopedProfile() { profile::hit(site_, items_); }

  void add_items(std::uint64_t n) noexcept { items_ += n; }

 private:
  ProfileSite site_;
  std::uint64_t items_;
};

}  // namespace lo::obs
