// The per-simulation observability bundle: one metrics registry + one event
// tracer, owned by sim::Simulator so every component reachable from a
// simulation shares the same instrumented substrate (and two simulations in
// one process — e.g. the determinism tests — stay fully isolated).
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lo::obs {

struct Hub {
  Registry registry;
  Tracer tracer;
};

}  // namespace lo::obs
