#include "obs/profile.hpp"

#include "obs/metrics.hpp"

namespace lo::obs {

const char* profile_site_name(ProfileSite s) noexcept {
  switch (s) {
    case ProfileSite::kEd25519Verify: return "ed25519_verify";
    case ProfileSite::kEd25519Sign: return "ed25519_sign";
    case ProfileSite::kSketchDecode: return "sketch_decode";
    case ProfileSite::kSketchAddAll: return "sketch_add_all";
    case ProfileSite::kReconcileRound: return "reconcile_round";
    case ProfileSite::kVerifyCacheProbe: return "verify_cache_probe";
    case ProfileSite::kCount: break;
  }
  return "unknown";
}

namespace profile {

// lolint:allow(mutable-static) reason=process-global profile table; slots are relaxed atomics so worker hits commute and publish() merges settled sums
bool g_enabled = false;
// lolint:allow(mutable-static) reason=process-global profile table; slots are relaxed atomics so worker hits commute and publish() merges settled sums
std::array<AtomicProfileCounters, static_cast<std::size_t>(ProfileSite::kCount)>
    g_counters{};

void set_enabled(bool on) noexcept { g_enabled = on; }

bool enabled() noexcept { return g_enabled; }

void reset() noexcept {
  for (auto& c : g_counters) {
    c.calls.store(0, std::memory_order_relaxed);
    c.items.store(0, std::memory_order_relaxed);
  }
}

ProfileCounters counters(ProfileSite s) noexcept {
  const auto& c = g_counters[static_cast<std::size_t>(s)];
  return ProfileCounters{c.calls.load(std::memory_order_relaxed),
                         c.items.load(std::memory_order_relaxed)};
}

void publish(Registry& reg) {
  for (std::size_t i = 0; i < g_counters.size(); ++i) {
    const auto site = static_cast<ProfileSite>(i);
    const Labels labels{{"site", profile_site_name(site)}};
    reg.counter("profile.calls", labels) =
        g_counters[i].calls.load(std::memory_order_relaxed);
    reg.counter("profile.items", labels) =
        g_counters[i].items.load(std::memory_order_relaxed);
  }
}

}  // namespace profile
}  // namespace lo::obs
