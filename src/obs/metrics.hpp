// Deterministic metrics registry (observability layer, part 1).
//
// Named, labeled counters / gauges / log-bucketed histograms with stable cell
// addresses, per-node scopes (label-prefixed views), snapshot/merge for
// per-node -> global aggregation, and JSON + CSV export shaped like the
// bench_common reports so one parser handles every artifact CI uploads.
//
// Determinism rules (lolint-enforced for all of src/obs/): no wall clocks and
// no unordered-container iteration. Cells live in a std::map keyed by the
// canonical metric id, so every export, snapshot and merge walks in
// lexicographic order and same-seed runs produce byte-identical files.
//
// Cell addresses are stable (std::map nodes), so hot paths hold a
// std::uint64_t* / double* handle obtained once at registration and pay a
// single increment per event — no string formatting or lookups on the fast
// path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/sync.hpp"
#include "util/thread_annotations.hpp"

namespace lo::obs {

// Label set as (key, value) pairs; canonicalization sorts by key and rejects
// duplicates, so insertion order never leaks into the exported id.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Canonical metric id: "name{k1=v1,k2=v2}" with label keys sorted (bare
// "name" when unlabeled). Throws std::invalid_argument on empty names,
// duplicate keys, or reserved characters ('{', '}', ',', '=', '"', newline)
// that would make the id ambiguous to parse back.
std::string metric_id(std::string_view name, const Labels& labels);

enum class MetricKind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

const char* metric_kind_name(MetricKind k) noexcept;

// Log-bucketed histogram: bucket e counts values v with 2^e <= v < 2^(e+1)
// (via frexp, exact for the full double range — no accumulated widths), plus
// a dedicated bucket for v <= 0. Geometric buckets keep the latency *tails*
// resolvable with O(64) buckets where fixed bins either clip or blur them.
class LogHistogram {
 public:
  // Bucket key for samples <= 0 (log buckets only cover v > 0).
  static constexpr int kZeroBucket = -1075;  // below the smallest denormal exp

  void observe(double v);

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  // Bucket exponent e -> count; bucket e spans [2^e, 2^(e+1)).
  const std::map<int, std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  // Approximate quantile (q in [0, 1]) from the bucket boundaries: walks the
  // cumulative counts and returns the geometric midpoint 2^(e + 0.5) of the
  // bucket holding the q-th sample, clamped to [min, max]. Error is bounded
  // by one octave — good enough for tail reporting, not for asserting exact
  // values.
  double quantile(double q) const;

  void merge(const LogHistogram& other);
  void clear();

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::map<int, std::uint64_t> buckets_;
};

class Registry {
 public:
  struct Cell {
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    LogHistogram hist;
  };
  // A snapshot is a value copy of the cell map: cheap to take mid-run,
  // mergeable offline, and exactly what the exporters consume.
  using Snapshot = std::map<std::string, Cell>;

  // Get-or-create. References stay valid for the registry's lifetime
  // (std::map node stability); re-registering with a different kind under the
  // same id throws std::invalid_argument.
  //
  // Concurrency model (DESIGN.md §4d): the internal mutex guards the cell
  // *map* — registration, snapshot, merge and export are safe from any
  // thread. The returned value references deliberately escape the lock: a
  // cell is single-writer (owned by the shard/thread that registered it),
  // and cross-thread aggregation goes through snapshot()/merge(), never
  // through a shared cell handle.
  std::uint64_t& counter(std::string_view name, const Labels& labels = {});
  double& gauge(std::string_view name, const Labels& labels = {});
  LogHistogram& histogram(std::string_view name, const Labels& labels = {});

  bool contains(std::string_view name, const Labels& labels = {}) const;
  std::size_t size() const;
  Snapshot snapshot() const;
  void clear();

  // Merges `other` into this registry: counters and histogram buckets add,
  // gauges add (the aggregate of per-node gauges is their sum — e.g. total
  // mempool size). Same id with a different kind throws. This is the
  // per-shard -> global aggregation path: workers merge snapshots of their
  // private registries into a shared one, serialized by its mutex.
  void merge(const Snapshot& other);

  // bench_common-style JSON ({"context": {...}, "metrics": [...]}) and flat
  // CSV. Both walk the cell map in key order: byte-identical across
  // same-seed runs. write_* return false (and print to stderr) on I/O
  // failure so smoke runs notice a missing artifact.
  std::string to_json(std::string_view suite = "lo_obs") const;
  std::string to_csv() const;
  bool write_json(const std::string& path,
                  std::string_view suite = "lo_obs") const;
  bool write_csv(const std::string& path) const;

 private:
  Cell& cell_locked(std::string_view name, const Labels& labels,
                    MetricKind kind) LO_REQUIRES(mu_);
  std::string to_json_locked(std::string_view suite) const LO_REQUIRES(mu_);
  std::string to_csv_locked() const LO_REQUIRES(mu_);

  mutable Mutex mu_;
  Snapshot cells_ LO_GUARDED_BY(mu_);
};

// The "global scope" view of a labeled snapshot: strips labels and sums
// same-named cells (e.g. "lo.retries{node=3}" and "lo.retries{node=7}" fold
// into "lo.retries"). Kind conflicts across a name throw.
Registry::Snapshot rollup(const Registry::Snapshot& snap);

// A label-scoped view of a registry: every metric created through the scope
// carries the scope's labels (e.g. {node=3}) plus any call-site extras. A
// default-constructed Scope is detached — it lazily owns a private registry
// so instrumented components work unconditionally (their metrics just stay
// local until someone attaches them to a shared registry).
class Scope {
 public:
  Scope() = default;
  Scope(Registry* reg, Labels labels)
      : reg_(reg), labels_(std::move(labels)) {}

  bool attached() const noexcept { return reg_ != nullptr; }
  const Labels& labels() const noexcept { return labels_; }

  std::uint64_t& counter(std::string_view name, const Labels& extra = {}) {
    return registry().counter(name, merged(extra));
  }
  double& gauge(std::string_view name, const Labels& extra = {}) {
    return registry().gauge(name, merged(extra));
  }
  LogHistogram& histogram(std::string_view name, const Labels& extra = {}) {
    return registry().histogram(name, merged(extra));
  }

  Registry& registry();

 private:
  Labels merged(const Labels& extra) const;

  Registry* reg_ = nullptr;
  Labels labels_;
  // Fallback storage for detached scopes; shared so Scope copies alias the
  // same cells (handles handed out before a copy stay coherent).
  std::shared_ptr<Registry> fallback_;
};

}  // namespace lo::obs
