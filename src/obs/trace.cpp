#include "obs/trace.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/serde.hpp"

namespace lo::obs {

namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'O', 'T', 'R'};
// v1: 40-byte events (no causal layer). v2: 56-byte events with span/parent.
// from_bytes reads both; bytes() always writes the current version.
constexpr std::uint32_t kVersionV1 = 1;
constexpr std::uint32_t kVersion = 2;

void append_u64_dec(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_i64_dec(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void json_escape_to(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back('?');  // trace names are ASCII identifiers in practice
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

const char* event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::kNone: return "none";
    case EventKind::kMsgSend: return "msg.send";
    case EventKind::kMsgRecv: return "msg.recv";
    case EventKind::kMsgDrop: return "msg.drop";
    case EventKind::kTxSubmit: return "tx.submit";
    case EventKind::kTxAdmit: return "tx.admit";
    case EventKind::kTxFinalize: return "tx.finalize";
    case EventKind::kTxCommit: return "tx.commit";
    case EventKind::kTxCensored: return "tx.censored";
    case EventKind::kCommitCreate: return "commit.create";
    case EventKind::kCommitObserve: return "commit.observe";
    case EventKind::kReconcileRound: return "reconcile.round";
    case EventKind::kBlockBuild: return "block.build";
    case EventKind::kBlockInspect: return "block.inspect";
    case EventKind::kSuspect: return "blame.suspect";
    case EventKind::kRetract: return "blame.retract";
    case EventKind::kExpose: return "blame.expose";
    case EventKind::kFaultCrash: return "fault.crash";
    case EventKind::kFaultRestart: return "fault.restart";
    case EventKind::kCacheProbe: return "cache.probe";
    case EventKind::kMemberProbe: return "member.probe";
    case EventKind::kMemberState: return "member.state";
    case EventKind::kAnomaly: return "anomaly";
  }
  return "unknown";
}

const char* drop_reason_name(std::uint64_t r) noexcept {
  switch (r) {
    case kDropSenderDown: return "sender_down";
    case kDropRandom: return "random";
    case kDropFilter: return "filter";
    case kDropFaultFilter: return "fault_filter";
    case kDropReceiverDown: return "receiver_down";
  }
  return "unknown";
}

const char* reconcile_outcome_name(std::uint64_t r) noexcept {
  switch (r) {
    case kReconcileDecoded: return "decoded";
    case kReconcileOverflow: return "overflow";
    case kReconcileEmpty: return "empty";
  }
  return "unknown";
}

std::uint64_t short_id(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t v = 0;
  const std::size_t n = bytes.size() < 8 ? bytes.size() : 8;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  MutexLock lock(mu_);
  if (capacity_ == 0) throw std::invalid_argument("tracer capacity 0");
  names_.emplace_back();  // id 0 = ""
}

void Tracer::enable(bool on) { enabled_ = on; }

void Tracer::set_capacity(std::size_t capacity) {
  if (capacity == 0) throw std::invalid_argument("tracer capacity 0");
  MutexLock lock(mu_);
  capacity_ = capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::size_t Tracer::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

std::size_t Tracer::size() const {
  MutexLock lock(mu_);
  return count_;
}

std::uint64_t Tracer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

namespace {
// Shard-worker redirect (see Tracer::ThreadSink). Thread-local by design:
// each worker thread owns exactly one sink for the duration of a lookahead
// window, installed and cleared by the simulator around the window body.
thread_local Tracer::ThreadSink* t_sink = nullptr;
// Current causal context (see Tracer::Cause). Thread-local by design: the
// simulator sets it around every dispatch on the thread that executes it,
// and derives it from simulator event keys, so the values a thread observes
// are independent of which thread runs the dispatch.
thread_local Tracer::Cause t_cause;
}  // namespace

void Tracer::set_thread_sink(ThreadSink* sink) noexcept { t_sink = sink; }

Tracer::ThreadSink* Tracer::thread_sink() noexcept { return t_sink; }

void Tracer::set_thread_cause(Cause c) noexcept { t_cause = c; }

Tracer::Cause Tracer::thread_cause() noexcept { return t_cause; }

void Tracer::append(const TraceEvent& ev) {
  MutexLock lock(mu_);
  if (ring_.size() != capacity_) ring_.resize(capacity_);
  if (count_ < capacity_) {
    ring_[(head_ + count_) % capacity_] = ev;
    ++count_;
  } else {
    ring_[head_] = ev;  // overwrite the oldest
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }
}

std::uint16_t Tracer::intern(std::string_view s) {
  if (s.empty()) return 0;
  if (ThreadSink* sink = t_sink) return sink->sink_intern(s);
  MutexLock lock(mu_);
  auto it = intern_.find(s);
  if (it != intern_.end()) return it->second;
  if (names_.size() > 0xFFFF) throw std::length_error("tracer intern table full");
  const auto id = static_cast<std::uint16_t>(names_.size());
  names_.emplace_back(s);
  intern_.emplace(std::string(s), id);
  return id;
}

std::string Tracer::name(std::uint16_t id) const {
  MutexLock lock(mu_);
  if (id >= names_.size()) throw std::out_of_range("unknown interned name");
  return names_[id];
}

std::vector<std::string> Tracer::names() const {
  MutexLock lock(mu_);
  return names_;
}

void Tracer::record(EventKind kind, std::uint32_t node, std::uint32_t peer,
                    std::uint64_t a, std::uint64_t b, std::uint16_t name,
                    std::uint32_t aux) {
  TraceEvent ev;
  ev.at = clock_ != nullptr ? *clock_ : 0;
  ev.kind = static_cast<std::uint16_t>(kind);
  ev.name = name;
  ev.node = node;
  ev.peer = peer;
  ev.aux = aux;
  ev.a = a;
  ev.b = b;
  const Cause c = thread_cause();
  ev.span = c.span;
  ev.parent = c.parent;
  append(ev);
}

std::vector<TraceEvent> Tracer::events_locked() const {
  std::vector<TraceEvent> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

std::vector<TraceEvent> Tracer::events() const {
  MutexLock lock(mu_);
  return events_locked();
}

void Tracer::clear() {
  MutexLock lock(mu_);
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::vector<std::uint8_t> Tracer::bytes() const {
  MutexLock lock(mu_);
  util::Writer w;
  for (std::uint8_t m : kMagic) w.u8(m);
  w.u32(kVersion);
  w.u64(dropped_);
  w.u32(static_cast<std::uint32_t>(names_.size()));
  for (const auto& n : names_) w.str(n);
  w.u64(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    const TraceEvent& ev = ring_[(head_ + i) % capacity_];
    w.u64(static_cast<std::uint64_t>(ev.at));
    w.u16(ev.kind);
    w.u16(ev.name);
    w.u32(ev.node);
    w.u32(ev.peer);
    w.u32(ev.aux);
    w.u64(ev.a);
    w.u64(ev.b);
    w.u64(ev.span);
    w.u64(ev.parent);
  }
  return w.take_u8();
}

bool Tracer::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> data = bytes();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

Tracer::File Tracer::from_bytes(std::span<const std::uint8_t> data) {
  util::Reader r(data);
  for (std::uint8_t m : kMagic) {
    if (r.u8() != m) throw util::SerdeError("bad trace magic");
  }
  const std::uint32_t version = r.u32();
  if (version != kVersion && version != kVersionV1) {
    throw util::SerdeError("unsupported trace version");
  }
  File f;
  f.dropped = r.u64();
  const std::uint32_t nnames = r.u32();
  f.names.reserve(std::min<std::size_t>(nnames, r.remaining()));
  for (std::uint32_t i = 0; i < nnames; ++i) f.names.push_back(r.str());
  const std::uint64_t nevents = r.u64();
  // Clamp reserve by what the buffer can hold so a hostile count prefix
  // cannot force a huge allocation (events are 40 wire bytes in v1, 56 in v2).
  const std::uint64_t wire_size = version == kVersionV1 ? 40 : 56;
  f.events.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(nevents, r.remaining() / wire_size)));
  for (std::uint64_t i = 0; i < nevents; ++i) {
    TraceEvent ev;
    ev.at = static_cast<std::int64_t>(r.u64());
    ev.kind = r.u16();
    ev.name = r.u16();
    ev.node = r.u32();
    ev.peer = r.u32();
    ev.aux = r.u32();
    ev.a = r.u64();
    ev.b = r.u64();
    if (version >= kVersion) {
      ev.span = r.u64();
      ev.parent = r.u64();
    }
    if (ev.name >= f.names.size()) throw util::SerdeError("trace name id out of range");
    f.events.push_back(ev);
  }
  if (!r.done()) throw util::SerdeError("trailing bytes after trace");
  return f;
}

Tracer::File Tracer::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw util::SerdeError("cannot open trace file: " + path);
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  // A short read due to an I/O error would otherwise parse as a "truncated
  // trace" (or worse, silently as a smaller valid one) — fail loudly instead.
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) throw util::SerdeError("read error on trace file: " + path);
  return from_bytes(data);
}

namespace {

// One Chrome trace-event object. The async tx span ("b"/"n"/"e") shares
// id/cat/name across its three phases so the viewer stitches them.
void append_chrome_event(std::string& out, const Tracer::File& f,
                         const TraceEvent& ev, bool* first) {
  const auto kind = static_cast<EventKind>(ev.kind);
  const char* kname = event_kind_name(kind);

  const auto open = [&](const char* ph, const char* name_override) {
    if (!*first) out += ",\n";
    *first = false;
    out += "    {\"name\": \"";
    json_escape_to(out, name_override != nullptr ? name_override : kname);
    out += "\", \"ph\": \"";
    out += ph;
    out += "\", \"ts\": ";
    append_i64_dec(out, ev.at);
    out += ", \"pid\": 0, \"tid\": ";
    append_u64_dec(out, ev.node);
  };
  const auto args_common = [&] {
    out += ", \"args\": {\"peer\": ";
    append_u64_dec(out, ev.peer);
    out += ", \"a\": ";
    append_u64_dec(out, ev.a);
    out += ", \"b\": ";
    append_u64_dec(out, ev.b);
    if (ev.name != 0 && ev.name < f.names.size()) {
      out += ", \"label\": \"";
      json_escape_to(out, f.names[ev.name]);
      out += "\"";
    }
    if (kind == EventKind::kMsgDrop) {
      out += ", \"reason\": \"";
      out += drop_reason_name(ev.a);
      out += "\"";
    }
    if (kind == EventKind::kReconcileRound) {
      out += ", \"outcome\": \"";
      out += reconcile_outcome_name(ev.a);
      out += "\"";
    }
    // Causal layer (v2 traces only): pre-causal captures render unchanged.
    if (ev.span != 0) {
      out += ", \"span\": ";
      append_u64_dec(out, ev.span);
      out += ", \"parent\": ";
      append_u64_dec(out, ev.parent);
    }
    if (ev.aux != 0) {
      out += ", \"shard\": ";
      append_u64_dec(out, ev.aux);
    }
    out += "}";
  };

  // Thread-scoped instant for every event.
  open("i", nullptr);
  out += ", \"s\": \"t\"";
  args_common();
  out += "}";

  // Transaction lifecycle additionally renders as an async span keyed by the
  // short tx id, so Perfetto draws submission -> inclusion as one bar.
  const char* span_ph = nullptr;
  if (kind == EventKind::kTxSubmit) span_ph = "b";
  if (kind == EventKind::kTxAdmit) span_ph = "n";
  if (kind == EventKind::kTxCommit) span_ph = "n";
  if (kind == EventKind::kTxCensored) span_ph = "n";
  if (kind == EventKind::kTxFinalize) span_ph = "e";
  if (span_ph != nullptr) {
    open(span_ph, "tx.lifespan");
    out += ", \"cat\": \"tx\", \"id\": \"0x";
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(ev.a));
    out += buf;
    out += "\"";
    args_common();
    out += "}";
  }
}

}  // namespace

std::string chrome_json(const Tracer::File& f) {
  std::string out = "{\n  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"dropped_events\": ";
  append_u64_dec(out, f.dropped);
  out += "},\n  \"traceEvents\": [\n";
  out += "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
         "\"tid\": 0, \"args\": {\"name\": \"lo-sim\"}}";
  bool first = false;
  for (const TraceEvent& ev : f.events) {
    append_chrome_event(out, f, ev, &first);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string chrome_json(const Tracer& t) {
  Tracer::File f;
  f.dropped = t.dropped();
  f.names = t.names();
  f.events = t.events();
  return chrome_json(f);
}

bool write_chrome_json(const Tracer& t, const std::string& path) {
  const std::string text = chrome_json(t);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace lo::obs
