// Deterministic structured event tracer (observability layer, part 2).
//
// A fixed-capacity ring buffer of POD trace events stamped with *simulator*
// time — never wall clock (lolint's banned-source rule covers this
// directory), so same-seed runs produce byte-identical traces and the
// existing SHA-256 trace-digest determinism tests extend to the event
// stream. The recorder is disabled by default; when disabled, emit() is a
// single predictable branch.
//
// Events cover the whole mempool stack: message send/recv/drop, the
// commitment lifecycle (created -> observed -> reconciled -> finalized),
// sketch-reconciliation rounds with decode outcomes, verify-cache hits,
// per-transaction lifecycle spans (submit -> admit -> finalize across
// nodes), and fault-injector events. PeerReview-style accountability is
// itself built on logs of observed events, so the trace doubles as an audit
// artifact.
//
// Export paths:
//   bytes() / write_file()  - canonical little-endian binary ("LOTR"), the
//                             stream the determinism digests cover;
//   chrome_json()           - Chrome/Perfetto trace-event JSON (tools/lotrace
//                             converts the binary form offline).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/sync.hpp"
#include "util/thread_annotations.hpp"

namespace lo::obs {

enum class EventKind : std::uint16_t {
  kNone = 0,
  // Network layer (emitted by sim::Simulator). a = wire bytes; b = latency
  // (send) or drop reason (drop); name = payload type.
  kMsgSend = 1,
  kMsgRecv = 2,
  kMsgDrop = 3,
  // Transaction lifecycle span (async span id = short tx id in a).
  kTxSubmit = 10,   // workload handed the tx to `node`
  kTxAdmit = 11,    // tx admitted to `node`'s mempool; b = bundle seqno
  kTxFinalize = 12, // first block inclusion observed; b = block height
  kTxCommit = 13,   // tx committed into `node`'s log; b = bundle seqno.
                    // Causal bridge: `parent` is the span of the admit
                    // dispatch, re-linking lineage across the batch timer.
  kTxCensored = 14, // inspection proved `peer` omitted tx `a`; b = block id
  // Commitment lifecycle. create: a = batch size, b = log seqno after the
  // append; observe: peer = creator, a = creator's commitment count.
  kCommitCreate = 20,
  kCommitObserve = 21,  // header observed from `peer`
  // Set reconciliation. a = decode outcome (ReconcileOutcome);
  // b = recovered difference size (or sketch capacity on failure).
  kReconcileRound = 30,
  // Blocks. a = short block id; b = tx count (build) / seqno span (inspect).
  kBlockBuild = 40,
  kBlockInspect = 41,
  // Accountability. peer = accused/exposed node; a = detail.
  kSuspect = 50,
  kRetract = 51,
  kExpose = 52,
  // Fault injector. a = detail (e.g. scheduled restart delay us).
  kFaultCrash = 60,
  kFaultRestart = 61,
  // Verify cache. a = 1 on hit, 0 on miss; b = tier (0 = key, 1 = memo).
  kCacheProbe = 70,
  // Membership (SWIM failure detector). probe: peer = probed member (or the
  // proxy for an indirect request), a = probe seq, b = 0 direct / 1 indirect;
  // state: peer = member, a = MemberState, b = incarnation.
  kMemberProbe = 80,
  kMemberState = 81,
  // Online anomaly detector (harness). peer = detector kind (AnomalyKind),
  // a = observed value in microseconds or a count, b = threshold.
  kAnomaly = 90,
};

const char* event_kind_name(EventKind k) noexcept;

// Drop reasons carried in `a` of kMsgDrop, matching the simulator's
// evaluation order.
enum DropReason : std::uint64_t {
  kDropSenderDown = 0,
  kDropRandom = 1,
  kDropFilter = 2,
  kDropFaultFilter = 3,
  kDropReceiverDown = 4,
};

const char* drop_reason_name(std::uint64_t r) noexcept;

// Decode outcomes carried in `a` of kReconcileRound.
enum ReconcileOutcome : std::uint64_t {
  kReconcileDecoded = 0,
  kReconcileOverflow = 1,  // difference exceeded sketch capacity
  kReconcileEmpty = 2,     // decoded, nothing missing
};

const char* reconcile_outcome_name(std::uint64_t r) noexcept;

// POD record (56 wire bytes, v2). `name` is an interned string id (payload
// type, metric name); 0 means "no name". `span`/`parent` are the causal
// layer: every event carries the span of the dispatch that emitted it and
// the span of the dispatch that *caused* that dispatch (the send for a
// delivery, the scheduling context for a timer), so send -> deliver ->
// handle -> emit chains form a cross-node happens-before DAG. Span ids are
// derived from simulator event keys, so they are identical across worker
// counts; 0 means "no cause" (emitted outside any dispatch).
struct TraceEvent {
  std::int64_t at = 0;  // simulator microseconds
  std::uint16_t kind = 0;
  std::uint16_t name = 0;
  std::uint32_t node = 0;
  std::uint32_t peer = 0;
  std::uint32_t aux = 0;  // shard id for shard-scoped events; 0 otherwise
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t span = 0;    // causal span of the emitting dispatch
  std::uint64_t parent = 0;  // span of the causing dispatch (0 = root)
};

// Short id for span correlation: first 8 bytes of a digest, little-endian
// (fewer bytes are zero-padded). Collisions across 2^64 are irrelevant for
// trace grouping.
std::uint64_t short_id(std::span<const std::uint8_t> bytes) noexcept;

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  // The per-thread "current cause": the causal span of the dispatch the
  // calling thread is currently executing, and that dispatch's own parent.
  // The simulator sets it around every event dispatch (serial and sharded
  // paths both), emit() stamps it into each recorded event, and send/
  // schedule capture it as the parent of the events they create. Stored here
  // rather than in sim/ so obs stays independent of the scheduler.
  struct Cause {
    std::uint64_t span = 0;
    std::uint64_t parent = 0;
  };
  static void set_thread_cause(Cause c) noexcept;
  static Cause thread_cause() noexcept;

  // RAII re-parent: protocol code wraps an emit in a CauseScope to link it
  // to an earlier dispatch (e.g. the commit bridge linking back to the admit
  // span across the batch timer). Restores the previous cause on exit.
  class CauseScope {
   public:
    explicit CauseScope(Cause c) noexcept : prev_(thread_cause()) {
      set_thread_cause(c);
    }
    ~CauseScope() { set_thread_cause(prev_); }
    CauseScope(const CauseScope&) = delete;
    CauseScope& operator=(const CauseScope&) = delete;

   private:
    Cause prev_;
  };

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  // The tracer stamps events by dereferencing `now`: the simulator hands a
  // pointer to its clock cell once, and every component holding a Tracer*
  // gets simulator-time stamps without depending on sim/. Null clock stamps
  // 0 (useful in unit tests).
  void set_clock(const std::int64_t* now) noexcept { clock_ = now; }

  void enable(bool on);
  bool enabled() const noexcept { return enabled_; }

  // Changing capacity clears the buffer (ring arithmetic restarts).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  // Per-thread redirect for the sharded parallel simulator. While a sink is
  // installed on a thread, emit() and intern() on that thread route to the
  // sink instead of the shared ring/intern table: workers record into
  // shard-local buffers (with shard-local intern ids) and the simulator
  // merges them into this tracer at the window barrier, in deterministic
  // event-key order, remapping names through the canonical intern(). The
  // registration is thread-local, so installing a sink never perturbs other
  // threads or other tracers.
  class ThreadSink {
   public:
    virtual ~ThreadSink() = default;
    virtual void sink_event(EventKind kind, std::uint32_t node,
                            std::uint32_t peer, std::uint64_t a,
                            std::uint64_t b, std::uint16_t name,
                            std::uint32_t aux) = 0;
    virtual std::uint16_t sink_intern(std::string_view s) = 0;
  };
  static void set_thread_sink(ThreadSink* sink) noexcept;
  static ThreadSink* thread_sink() noexcept;

  // Appends a fully-formed event (timestamp already stamped by the caller)
  // under the normal ring/overflow policy — the barrier merge path.
  void append(const TraceEvent& ev);

  // Interns a string, returning its stable id. Ids are assigned in first-use
  // order (deterministic given deterministic call order); id 0 is "". Throws
  // std::length_error past 65535 distinct strings. Routed through the
  // thread sink when one is installed on the calling thread.
  std::uint16_t intern(std::string_view s);
  std::string name(std::uint16_t id) const;
  std::vector<std::string> names() const;

  // Records an event (no-op when disabled). Overflow policy: drop-oldest —
  // the ring keeps the most recent `capacity` events and counts what it
  // evicted, so the tail of a long run is always inspectable. The enabled
  // check stays outside the lock: enable() is a configuration call made
  // before any concurrent emitters exist (DESIGN.md §4d).
  void emit(EventKind kind, std::uint32_t node, std::uint32_t peer = 0,
            std::uint64_t a = 0, std::uint64_t b = 0, std::uint16_t name = 0,
            std::uint32_t aux = 0) {
    if (!enabled_) return;
    if (ThreadSink* sink = thread_sink()) {
      sink->sink_event(kind, node, peer, a, b, name, aux);
      return;
    }
    record(kind, node, peer, a, b, name, aux);
  }

  std::size_t size() const;
  std::uint64_t dropped() const;

  // Events oldest -> newest (linearized copy of the ring).
  std::vector<TraceEvent> events() const;

  // Drops recorded events and the eviction count; keeps the string table so
  // previously handed-out intern ids stay valid.
  void clear();

  // Canonical binary form: "LOTR" magic, version, dropped count, string
  // table, then events oldest -> newest, all little-endian. This is the byte
  // stream the determinism digests cover.
  std::vector<std::uint8_t> bytes() const;
  bool write_file(const std::string& path) const;

  // Parsed binary trace (what tools/lotrace and tools/loscope consume).
  // Throws util::SerdeError on malformed input (bad magic, unknown version,
  // truncated body, out-of-range name id, trailing bytes). Version 1 files
  // (40-byte events, pre-causal) are still readable: span/parent load as 0.
  struct File {
    std::uint64_t dropped = 0;
    std::vector<std::string> names;
    std::vector<TraceEvent> events;
  };
  static File from_bytes(std::span<const std::uint8_t> data);
  static File read_file(const std::string& path);

 private:
  void record(EventKind kind, std::uint32_t node, std::uint32_t peer,
              std::uint64_t a, std::uint64_t b, std::uint16_t name,
              std::uint32_t aux);
  std::vector<TraceEvent> events_locked() const LO_REQUIRES(mu_);

  // enabled_ and clock_ are configuration: set before any concurrent
  // emitters exist, read-only afterwards — deliberately outside mu_ so the
  // disabled fast path stays one branch. Ring, counters and the intern table
  // are the shared-mutable state the capability analysis guards.
  // lolint:allow(unguarded-field) reason=configuration latch set before concurrent emitters exist; keeping it lock-free is what makes the disabled path one branch
  bool enabled_ = false;
  const std::int64_t* clock_ = nullptr;
  mutable Mutex mu_;
  std::size_t capacity_ LO_GUARDED_BY(mu_);
  std::size_t head_ LO_GUARDED_BY(mu_) = 0;  // index of the oldest event
  std::size_t count_ LO_GUARDED_BY(mu_) = 0;
  std::uint64_t dropped_ LO_GUARDED_BY(mu_) = 0;
  // Allocated lazily on first record.
  std::vector<TraceEvent> ring_ LO_GUARDED_BY(mu_);
  std::vector<std::string> names_ LO_GUARDED_BY(mu_);
  std::map<std::string, std::uint16_t, std::less<>> intern_ LO_GUARDED_BY(mu_);
};

// Chrome/Perfetto trace-event JSON. Every event renders as a thread-scoped
// instant ("ph": "i", tid = node); transaction lifecycle events additionally
// render as an async span ("b"/"n"/"e", id = short tx id) so Perfetto draws
// one bar per tx from submission to inclusion. Timestamps are simulator
// microseconds, which is exactly the unit the format expects.
std::string chrome_json(const Tracer::File& f);
std::string chrome_json(const Tracer& t);
bool write_chrome_json(const Tracer& t, const std::string& path);

}  // namespace lo::obs
