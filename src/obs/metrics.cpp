#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace lo::obs {

namespace {

bool bad_id_char(char c) {
  return c == '{' || c == '}' || c == ',' || c == '=' || c == '"' ||
         c == '\n' || c == '\r';
}

void check_token(std::string_view s, const char* what) {
  if (s.empty()) throw std::invalid_argument(std::string("empty metric ") + what);
  for (char c : s) {
    if (bad_id_char(c)) {
      throw std::invalid_argument(std::string("reserved character in metric ") +
                                  what + ": " + std::string(s));
    }
  }
}

// Escapes the few characters metric ids can still contain that JSON strings
// cannot hold verbatim.
void json_escape_to(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else {
      out.push_back(c);
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

// The name part of a canonical id ("lo.retries{node=3}" -> "lo.retries").
std::string_view id_name(std::string_view id) {
  const std::size_t brace = id.find('{');
  return brace == std::string_view::npos ? id : id.substr(0, brace);
}

}  // namespace

std::string metric_id(std::string_view name, const Labels& labels) {
  check_token(name, "name");
  if (labels.empty()) return std::string(name);
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string id(name);
  id.push_back('{');
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    check_token(sorted[i].first, "label key");
    check_token(sorted[i].second, "label value");
    if (i > 0) {
      if (sorted[i].first == sorted[i - 1].first) {
        throw std::invalid_argument("duplicate metric label key: " +
                                    sorted[i].first);
      }
      id.push_back(',');
    }
    id += sorted[i].first;
    id.push_back('=');
    id += sorted[i].second;
  }
  id.push_back('}');
  return id;
}

const char* metric_kind_name(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

void LogHistogram::observe(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  int bucket = kZeroBucket;
  if (v > 0.0) {
    int e = 0;
    std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)  =>  v in [2^(e-1), 2^e)
    bucket = e - 1;
  }
  ++buckets_[bucket];
}

double LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
  // Rank of the q-th sample (1-based, nearest-rank).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = 0;
  for (const auto& [e, c] : buckets_) {
    cum += c;
    if (cum >= rank) {
      if (e == kZeroBucket) return min_;
      const double mid = std::ldexp(std::sqrt(2.0), e);  // 2^(e + 0.5)
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (const auto& [e, c] : other.buckets_) buckets_[e] += c;
}

void LogHistogram::clear() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  buckets_.clear();
}

Registry::Cell& Registry::cell_locked(std::string_view name,
                                      const Labels& labels, MetricKind kind) {
  const std::string id = metric_id(name, labels);
  auto [it, inserted] = cells_.try_emplace(id);
  if (inserted) {
    it->second.kind = kind;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("metric kind mismatch for " + id + ": have " +
                                metric_kind_name(it->second.kind) +
                                ", requested " + metric_kind_name(kind));
  }
  return it->second;
}

// The returned references escape the critical section by design: cell
// addresses are stable (std::map nodes) and each cell is single-writer.
// See the header's concurrency-model note.
std::uint64_t& Registry::counter(std::string_view name, const Labels& labels) {
  MutexLock lock(mu_);
  return cell_locked(name, labels, MetricKind::kCounter).counter;
}

double& Registry::gauge(std::string_view name, const Labels& labels) {
  MutexLock lock(mu_);
  return cell_locked(name, labels, MetricKind::kGauge).gauge;
}

LogHistogram& Registry::histogram(std::string_view name, const Labels& labels) {
  MutexLock lock(mu_);
  return cell_locked(name, labels, MetricKind::kHistogram).hist;
}

bool Registry::contains(std::string_view name, const Labels& labels) const {
  const std::string id = metric_id(name, labels);
  MutexLock lock(mu_);
  return cells_.find(id) != cells_.end();
}

std::size_t Registry::size() const {
  MutexLock lock(mu_);
  return cells_.size();
}

Registry::Snapshot Registry::snapshot() const {
  MutexLock lock(mu_);
  return cells_;
}

void Registry::clear() {
  MutexLock lock(mu_);
  cells_.clear();
}

void Registry::merge(const Snapshot& other) {
  MutexLock lock(mu_);
  for (const auto& [id, src] : other) {
    auto [it, inserted] = cells_.try_emplace(id);
    Cell& dst = it->second;
    if (inserted) {
      dst.kind = src.kind;
    } else if (dst.kind != src.kind) {
      throw std::invalid_argument("metric kind mismatch merging " + id);
    }
    dst.counter += src.counter;
    dst.gauge += src.gauge;
    dst.hist.merge(src.hist);
  }
}

std::string Registry::to_json(std::string_view suite) const {
  MutexLock lock(mu_);
  return to_json_locked(suite);
}

std::string Registry::to_json_locked(std::string_view suite) const {
  std::string out;
  out += "{\n  \"context\": {\n    \"bench_suite\": \"";
  json_escape_to(out, suite);
  out += "\",\n    \"exporter\": \"lo_obs\"\n  },\n  \"metrics\": [\n";
  std::size_t i = 0;
  for (const auto& [id, c] : cells_) {
    out += "    {\n      \"id\": \"";
    json_escape_to(out, id);
    out += "\",\n      \"kind\": \"";
    out += metric_kind_name(c.kind);
    out += "\",\n";
    switch (c.kind) {
      case MetricKind::kCounter:
        out += "      \"value\": ";
        append_u64(out, c.counter);
        out += "\n";
        break;
      case MetricKind::kGauge:
        out += "      \"value\": ";
        append_double(out, c.gauge);
        out += "\n";
        break;
      case MetricKind::kHistogram: {
        out += "      \"count\": ";
        append_u64(out, c.hist.count());
        out += ",\n      \"sum\": ";
        append_double(out, c.hist.sum());
        out += ",\n      \"min\": ";
        append_double(out, c.hist.min());
        out += ",\n      \"max\": ";
        append_double(out, c.hist.max());
        out += ",\n      \"p50\": ";
        append_double(out, c.hist.quantile(0.5));
        out += ",\n      \"p95\": ";
        append_double(out, c.hist.quantile(0.95));
        out += ",\n      \"p99\": ";
        append_double(out, c.hist.quantile(0.99));
        out += ",\n      \"buckets\": [";
        std::size_t j = 0;
        for (const auto& [e, n] : c.hist.buckets()) {
          if (j++ > 0) out += ", ";
          out += "{\"exp\": ";
          char buf[16];
          std::snprintf(buf, sizeof(buf), "%d", e);
          out += buf;
          out += ", \"count\": ";
          append_u64(out, n);
          out += "}";
        }
        out += "]\n";
        break;
      }
    }
    out += "    }";
    if (++i < cells_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string Registry::to_csv() const {
  MutexLock lock(mu_);
  return to_csv_locked();
}

std::string Registry::to_csv_locked() const {
  std::string out = "id,kind,value,count,sum,min,max,p50,p95,p99\n";
  for (const auto& [id, c] : cells_) {
    out += id;
    out.push_back(',');
    out += metric_kind_name(c.kind);
    out.push_back(',');
    switch (c.kind) {
      case MetricKind::kCounter:
        append_u64(out, c.counter);
        out += ",,,,,,,";
        break;
      case MetricKind::kGauge:
        append_double(out, c.gauge);
        out += ",,,,,,,";
        break;
      case MetricKind::kHistogram:
        out.push_back(',');
        append_u64(out, c.hist.count());
        out.push_back(',');
        append_double(out, c.hist.sum());
        out.push_back(',');
        append_double(out, c.hist.min());
        out.push_back(',');
        append_double(out, c.hist.max());
        out.push_back(',');
        append_double(out, c.hist.quantile(0.5));
        out.push_back(',');
        append_double(out, c.hist.quantile(0.95));
        out.push_back(',');
        append_double(out, c.hist.quantile(0.99));
        break;
    }
    out.push_back('\n');
  }
  return out;
}

bool Registry::write_json(const std::string& path,
                          std::string_view suite) const {
  return write_text_file(path, to_json(suite));
}

bool Registry::write_csv(const std::string& path) const {
  return write_text_file(path, to_csv());
}

Registry::Snapshot rollup(const Registry::Snapshot& snap) {
  Registry::Snapshot out;
  for (const auto& [id, src] : snap) {
    const std::string name(id_name(id));
    auto [it, inserted] = out.try_emplace(name);
    Registry::Cell& dst = it->second;
    if (inserted) {
      dst.kind = src.kind;
    } else if (dst.kind != src.kind) {
      throw std::invalid_argument("metric kind conflict rolling up " + name);
    }
    dst.counter += src.counter;
    dst.gauge += src.gauge;
    dst.hist.merge(src.hist);
  }
  return out;
}

Registry& Scope::registry() {
  if (reg_ != nullptr) return *reg_;
  if (!fallback_) fallback_ = std::make_shared<Registry>();
  return *fallback_;
}

Labels Scope::merged(const Labels& extra) const {
  if (extra.empty()) return labels_;
  Labels out = labels_;
  out.insert(out.end(), extra.begin(), extra.end());
  return out;
}

}  // namespace lo::obs
