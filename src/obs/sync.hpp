// Annotated mutex for the observability layer.
//
// obs::Mutex is a std::mutex carrying the Clang capability attribute, and
// MutexLock is the scoped guard the thread-safety analysis understands. The
// simulator is single-threaded today, so every acquisition is uncontended —
// the wrappers exist so Registry/Tracer state is *annotated and guarded now*,
// and the parallel-DES refactor inherits machine-checked lock discipline
// instead of an archaeology project (DESIGN.md §4d).
//
// Locking stays out of the per-event hot paths: Registry hands out stable
// cell addresses once (registration locks, bumps do not — single-writer by
// design), and Tracer::emit is one predictable branch while disabled.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace lo::obs {

class LO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LO_ACQUIRE() { mu_.lock(); }
  void unlock() LO_RELEASE() { mu_.unlock(); }
  bool try_lock() LO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

class LO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace lo::obs
