// Consensus-layer stub (Stage IV, Sec. 2.3 / 6.3).
//
// LØ is consensus-agnostic; the paper models miner selection as a random
// process with an Ethereum-like mean block time of 12 s. This module provides
// exactly that: a seeded leader schedule with exponential (or fixed) block
// intervals, optionally restricted to correct nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace lo::consensus {

struct LeaderConfig {
  sim::Duration mean_block_interval = 12 * sim::kSecond;
  bool exponential_intervals = true;
  std::uint64_t seed = 7;
};

class LeaderSchedule {
 public:
  LeaderSchedule(std::size_t num_nodes, const LeaderConfig& config)
      : num_nodes_(num_nodes), config_(config), rng_(config.seed) {}

  // Time until the next block after the previous one.
  sim::Duration next_interval();

  // Uniformly random leader; `eligible` (optional) restricts the choice.
  std::uint32_t next_leader(const std::vector<bool>* eligible = nullptr);

  // One independent leader draw per shard, in ascending shard order (the
  // sharded pipeline's per-slot proposer set, DESIGN.md §7). count = 1 is
  // exactly one next_leader() call, so the unsharded RNG stream is unchanged.
  std::vector<std::uint32_t> next_leaders(
      std::uint32_t count, const std::vector<bool>* eligible = nullptr);

 private:
  std::size_t num_nodes_;
  LeaderConfig config_;
  util::Rng rng_;
};

}  // namespace lo::consensus
