#include "consensus/leader.hpp"

namespace lo::consensus {

sim::Duration LeaderSchedule::next_interval() {
  if (!config_.exponential_intervals) return config_.mean_block_interval;
  const double mean = static_cast<double>(config_.mean_block_interval);
  return std::max<sim::Duration>(
      1, static_cast<sim::Duration>(rng_.next_exponential(mean)));
}

std::uint32_t LeaderSchedule::next_leader(const std::vector<bool>* eligible) {
  if (eligible == nullptr) {
    return static_cast<std::uint32_t>(rng_.next_below(num_nodes_));
  }
  // Rejection-sample among eligible nodes; falls back to a scan if sparse.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto c = static_cast<std::uint32_t>(rng_.next_below(num_nodes_));
    if (c < eligible->size() && (*eligible)[c]) return c;
  }
  for (std::uint32_t c = 0; c < num_nodes_; ++c) {
    if (c < eligible->size() && (*eligible)[c]) return c;
  }
  return 0;
}

std::vector<std::uint32_t> LeaderSchedule::next_leaders(
    std::uint32_t count, const std::vector<bool>* eligible) {
  std::vector<std::uint32_t> out;
  out.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) out.push_back(next_leader(eligible));
  return out;
}

}  // namespace lo::consensus
