#include "consensus/chain.hpp"

namespace lo::consensus {

crypto::Digest256 Chain::tip_hash() const {
  if (blocks_.empty()) return crypto::Digest256{};
  return blocks_.back().hash();
}

std::size_t Chain::append(const core::Block& block) {
  std::size_t fresh = 0;
  for (const auto& seg : block.segments) {
    for (const auto& id : seg.txids) {
      if (settled_.insert(id).second) ++fresh;
    }
  }
  blocks_.push_back(block);
  return fresh;
}

}  // namespace lo::consensus
