// Minimal blockchain (settlement bookkeeping for experiments and examples).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/block.hpp"
#include "core/types.hpp"

namespace lo::consensus {

class Chain {
 public:
  Chain() = default;

  std::uint64_t height() const noexcept { return blocks_.size(); }
  // Hash of the tip block, or the all-zero genesis hash when empty — this is
  // the order seed for the next block's canonical shuffle (Sec. 4.3).
  crypto::Digest256 tip_hash() const;

  // Appends a block; returns the number of transactions newly settled
  // (txs already settled by earlier blocks are not double-counted).
  std::size_t append(const core::Block& block);

  bool is_settled(const core::TxId& id) const {
    return settled_.count(id) != 0;
  }
  std::size_t settled_count() const noexcept { return settled_.size(); }
  const std::vector<core::Block>& blocks() const noexcept { return blocks_; }

 private:
  std::vector<core::Block> blocks_;
  std::unordered_set<core::TxId, core::TxIdHash> settled_;
};

}  // namespace lo::consensus
