// Minimal binary serialization used for every wire message in the simulator.
//
// All multi-byte integers are little-endian. The writer produces the exact
// byte string that the bandwidth accountant charges for, so serialized sizes
// are the ground truth for the Fig. 9 bandwidth experiments.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace lo::util {

class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }
  void u16(std::uint16_t v) { write_le(v); }
  void u32(std::uint32_t v) { write_le(v); }
  void u64(std::uint64_t v) { write_le(v); }
  void f64(double v);

  void bytes(std::span<const std::uint8_t> data) {
    for (auto b : data) buf_.push_back(std::byte{b});
  }
  void bytes(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  template <std::size_t N>
  void fixed(const std::array<std::uint8_t, N>& data) {
    bytes(std::span<const std::uint8_t>(data.data(), N));
  }

  // Length-prefixed (u32) variable byte string. Lengths that do not fit the
  // prefix would silently truncate and desync every later field for the
  // reader, so oversize input is a hard error.
  void var_bytes(std::span<const std::uint8_t> data) {
    u32(checked_len(data.size()));
    bytes(data);
  }
  void str(std::string_view s) {
    u32(checked_len(s.size()));
    for (char c : s) buf_.push_back(static_cast<std::byte>(c));
  }

  std::size_t size() const noexcept { return buf_.size(); }
  const std::vector<std::byte>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> take_u8();

 private:
  static std::uint32_t checked_len(std::size_t n) {
    if (n > 0xFFFFFFFFu) throw SerdeError("length exceeds u32 prefix");
    return static_cast<std::uint32_t>(n);
  }

  template <typename T>
  void write_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<std::byte> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  double f64();

  template <std::size_t N>
  std::array<std::uint8_t, N> fixed() {
    auto s = take(N);
    std::array<std::uint8_t, N> out;
    for (std::size_t i = 0; i < N; ++i) out[i] = s[i];
    return out;
  }

  std::vector<std::uint8_t> var_bytes() {
    const std::uint32_t n = u32();
    auto s = take(n);
    return {s.begin(), s.end()};
  }
  std::string str() {
    const std::uint32_t n = u32();
    auto s = take(n);
    return {reinterpret_cast<const char*>(s.data()), s.size()};
  }

  bool done() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> take(std::size_t n) {
    if (remaining() < n) throw SerdeError("buffer underrun");
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  template <typename T>
  T read_le() {
    auto s = take(sizeof(T));
    // Accumulate in 64 bits: |= on a narrow T would promote to int and then
    // implicitly narrow on assignment.
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(s[i]) << (8 * i);
    }
    return static_cast<T>(v);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace lo::util
