#include "util/serde.hpp"

#include <bit>
#include <cstring>

namespace lo::util {

void Writer::f64(double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  u64(bits);
}

std::vector<std::uint8_t> Writer::take_u8() {
  std::vector<std::uint8_t> out(buf_.size());
  std::memcpy(out.data(), buf_.data(), buf_.size());
  buf_.clear();
  return out;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

}  // namespace lo::util
