// Deterministic extraction from unordered associative containers.
//
// unordered_{map,set} iteration order depends on the hash seed, the bucket
// count growth policy and the standard-library implementation — it is NOT
// part of the replayable state. Whenever iteration order can reach a message,
// a digest, peer selection or any other protocol-visible artifact, extract a
// sorted view first. lolint's `unordered-iter` rule points here.
//
// All helpers are O(n log n) and allocate one vector; for the hot paths in
// this codebase (dozens to a few thousand entries) this is noise next to the
// signature checks the results feed into.
#pragma once

#include <algorithm>
#include <type_traits>
#include <vector>

namespace lo::util {

// Keys of an unordered_map / elements of an unordered_set, ascending.
template <typename Container>
std::vector<typename Container::key_type> sorted_keys(const Container& c) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(c.size());
  for (const auto& v : c) {
    if constexpr (std::is_same_v<typename Container::key_type,
                                 typename Container::value_type>) {
      keys.push_back(v);  // set: the element is the key
    } else {
      keys.push_back(v.first);  // map: take the key of the pair
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Pointers to an unordered_map's entries, sorted by key ascending. Pointers
// (not copies) so large mapped types — commitment headers, signed bundles —
// are not duplicated just to fix the order:
//
//   for (const auto* kv : sorted_items(latest_)) use(kv->first, kv->second);
//
// The pointers are invalidated by any mutation of the map, exactly like
// iterators; consume the view before touching the container.
template <typename Map>
std::vector<const typename Map::value_type*> sorted_items(const Map& m) {
  std::vector<const typename Map::value_type*> items;
  items.reserve(m.size());
  for (const auto& kv : m) items.push_back(&kv);
  std::sort(items.begin(), items.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return items;
}

}  // namespace lo::util
