#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace lo::util {

double Rng::next_exponential(double mean) noexcept {
  // Inverse CDF; guard against log(0).
  double u = next_double();
  if (u >= 1.0) u = 0.9999999999999999;
  return -mean * std::log1p(-u);
}

double Rng::next_normal() noexcept {
  // Box–Muller, discarding the second variate so the stream stays stateless.
  double u1 = next_double();
  double u2 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::next_lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * next_normal());
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) {
    shuffle(all);
    return all;
  }
  // Partial Fisher–Yates: shuffle only the first k slots.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace lo::util
