// Clang thread-safety (capability) annotation shim.
//
// The parallel-DES roadmap item shards nodes across worker threads, and the
// accountability guarantees rest on knowing — statically — what state is
// shared, which lock guards it, and where protocol handlers mutate it. These
// macros attach Clang's capability analysis to that state so lock discipline
// is a compile error under `-Wthread-safety -Werror` (the CI lint job builds
// the tree with clang++ exactly for this; see DESIGN.md §4d).
//
// Off Clang (GCC builds, which have no analysis) every macro expands to
// nothing, so the annotations are zero-cost documentation that the next
// toolchain run re-verifies.
//
// Usage sketch (the obs::Mutex / sim::ShardMutex wrappers carry the
// capability; see obs/sync.hpp and sim/shard_mutex.hpp):
//
//   class Registry {
//     mutable obs::Mutex mu_;
//     Snapshot cells_ LO_GUARDED_BY(mu_);
//     Cell& cell_locked(...) LO_REQUIRES(mu_);   // caller must hold mu_
//   };
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LO_THREAD_ANNOTATION
#define LO_THREAD_ANNOTATION(x)  // no-op: analysis is Clang-only
#endif

// A type that acts as a lock (std::mutex wrappers).
#define LO_CAPABILITY(x) LO_THREAD_ANNOTATION(capability(x))

// An RAII type that acquires on construction / releases on destruction.
#define LO_SCOPED_CAPABILITY LO_THREAD_ANNOTATION(scoped_lockable)

// Data members: reads and writes require holding the named capability.
#define LO_GUARDED_BY(x) LO_THREAD_ANNOTATION(guarded_by(x))
// Pointer members: dereferenced data (not the pointer itself) is guarded.
#define LO_PT_GUARDED_BY(x) LO_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: the caller must hold / must NOT hold the capability.
#define LO_REQUIRES(...) LO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LO_REQUIRES_SHARED(...) \
  LO_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define LO_EXCLUDES(...) LO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Functions that acquire / release the capability themselves.
#define LO_ACQUIRE(...) LO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LO_ACQUIRE_SHARED(...) \
  LO_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define LO_RELEASE(...) LO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LO_RELEASE_SHARED(...) \
  LO_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define LO_TRY_ACQUIRE(...) \
  LO_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Declares the value a function returns to be the named capability (lock
// accessors) — reserved for the parallel-DES shard table.
#define LO_RETURN_CAPABILITY(x) LO_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions the analysis cannot model (e.g. handing out a
// stable cell address for single-writer hot paths). Every use carries a
// comment explaining the ownership rule that replaces the static check.
#define LO_NO_THREAD_SAFETY_ANALYSIS \
  LO_THREAD_ANNOTATION(no_thread_safety_analysis)
