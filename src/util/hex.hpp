// Hex encoding helpers, mostly for test vectors and log/debug output.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace lo::util {

std::string to_hex(std::span<const std::uint8_t> data);

template <std::size_t N>
std::string to_hex(const std::array<std::uint8_t, N>& data) {
  return to_hex(std::span<const std::uint8_t>(data.data(), N));
}

// Parses a hex string (even length, [0-9a-fA-F]); throws std::invalid_argument.
std::vector<std::uint8_t> from_hex(std::string_view hex);

template <std::size_t N>
std::array<std::uint8_t, N> from_hex_fixed(std::string_view hex) {
  auto v = from_hex(hex);
  if (v.size() != N) throw std::invalid_argument("hex length mismatch");
  std::array<std::uint8_t, N> out;
  for (std::size_t i = 0; i < N; ++i) out[i] = v[i];
  return out;
}

}  // namespace lo::util
