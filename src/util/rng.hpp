// Deterministic pseudo-random number generation for simulation.
//
// Every experiment in this repository is seeded; the simulator, overlay,
// workload and protocol shuffles all draw from instances of Rng so that a run
// is reproducible bit-for-bit given the same seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace lo::util {

// SplitMix64: used to expand a 64-bit seed into the xoshiro256** state.
// Reference: Sebastiano Vigna, public-domain splitmix64.c.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 — fast, high-quality, deterministic PRNG.
// Satisfies the C++ UniformRandomBitGenerator concept so it can be used with
// <random> distributions if ever needed, although the helpers below are
// preferred because their results are platform-independent.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  // Derives an independent sub-stream from (seed, stream): the stream id is
  // folded through two SplitMix64 rounds before the xoshiro state expansion,
  // so stream k and stream k+1 share no prefix structure. This is how the
  // simulator gives every node its own generator — draws on one stream are
  // independent of how many draws other streams made, which is what lets
  // sharded workers draw without any scheduling-order coupling.
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
    std::uint64_t sm = stream;
    std::uint64_t mixed = seed ^ splitmix64(sm);
    mixed ^= splitmix64(sm) << 1;
    return Rng(mixed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  std::uint64_t operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound == 0 returns 0.
  // Uses Lemire's nearly-divisionless method with rejection for exactness.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed value with the given mean (inverse-CDF method).
  double next_exponential(double mean) noexcept;

  // Standard normal via Box–Muller (deterministic, no cached spare).
  double next_normal() noexcept;

  // Lognormal with parameters of the underlying normal distribution.
  double next_lognormal(double mu, double sigma) noexcept;

  // True with probability p (clamped to [0,1]).
  bool next_bool(double p) noexcept { return next_double() < p; }

  // In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) (k > n returns all of [0,n) shuffled).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace lo::util
