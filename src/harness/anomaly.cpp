#include "harness/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lo::harness {

const char* anomaly_kind_name(AnomalyKind k) noexcept {
  switch (k) {
    case AnomalyKind::kCensorDwell: return "censor_dwell";
    case AnomalyKind::kSuspicionSpike: return "suspicion_spike";
    case AnomalyKind::kReconcileFailure: return "reconcile_failure";
    case AnomalyKind::kCommitLatencySlo: return "commit_latency_slo";
  }
  return "unknown";
}

AnomalyMonitor::AnomalyMonitor(sim::Simulator& sim, const AnomalyConfig& cfg)
    : sim_(sim), cfg_(cfg) {
  auto& reg = sim_.obs().registry;
  c_alerts_[0] = &reg.counter("lo.anomaly.alerts");
  c_alerts_[static_cast<std::size_t>(AnomalyKind::kCensorDwell)] =
      &reg.counter("lo.anomaly.alerts", {{"kind", "censor_dwell"}});
  c_alerts_[static_cast<std::size_t>(AnomalyKind::kSuspicionSpike)] =
      &reg.counter("lo.anomaly.alerts", {{"kind", "suspicion_spike"}});
  c_alerts_[static_cast<std::size_t>(AnomalyKind::kReconcileFailure)] =
      &reg.counter("lo.anomaly.alerts", {{"kind", "reconcile_failure"}});
  c_alerts_[static_cast<std::size_t>(AnomalyKind::kCommitLatencySlo)] =
      &reg.counter("lo.anomaly.alerts", {{"kind", "commit_latency_slo"}});
}

void AnomalyMonitor::start() {
  if (started_) return;
  started_ = true;
  period_ = std::max<sim::Duration>(
      1, sim::from_seconds(std::max(cfg_.tick_interval_s, 1e-6)));
  schedule_tick();
}

// Self-rescheduling coordinator timer, exactly like the invariant checker.
void AnomalyMonitor::schedule_tick() {
  sim_.schedule(period_, [this] {
    tick();
    schedule_tick();
  });
}

void AnomalyMonitor::on_submit(std::uint64_t txid_short,
                               sim::TimePoint created_at) {
  inflight_.emplace(txid_short, created_at);
}

void AnomalyMonitor::on_settle(std::uint64_t txid_short, sim::TimePoint when) {
  auto it = inflight_.find(txid_short);
  if (it == inflight_.end()) return;  // duplicate settle or unknown tx
  window_settle_latency_s_.push_back(sim::to_seconds(when - it->second));
  inflight_.erase(it);
  dwell_alerted_.erase(txid_short);
}

void AnomalyMonitor::on_suspicion() { ++window_suspicions_; }

void AnomalyMonitor::on_reconcile(bool decode_ok) {
  if (decode_ok) {
    ++window_reconcile_ok_;
  } else {
    ++window_reconcile_fail_;
  }
}

void AnomalyMonitor::raise(AnomalyKind kind, double value, double threshold,
                           std::string detail) {
  const double now_s = sim::to_seconds(sim_.now());
  ++*c_alerts_[0];
  ++*c_alerts_[static_cast<std::size_t>(kind)];
  // kAnomaly rides the trace stream: peer = detector kind, a/b = observed
  // value / threshold in milli-units (integers keep the wire deterministic).
  sim_.obs().tracer.emit(
      obs::EventKind::kAnomaly, 0, static_cast<std::uint32_t>(kind),
      static_cast<std::uint64_t>(std::llround(value * 1000.0)),
      static_cast<std::uint64_t>(std::llround(threshold * 1000.0)));
  alerts_.push_back(Alert{kind, now_s, value, threshold, std::move(detail)});
}

void AnomalyMonitor::tick() {
  const double now_s = sim::to_seconds(sim_.now());

  // censor-dwell: oldest-first scan; alert once per tx, keep it in flight so
  // a late settle still clears it.
  for (const auto& [tid, created_at] : inflight_) {
    const double dwell_s = now_s - sim::to_seconds(created_at);
    if (dwell_s < cfg_.censor_dwell_threshold_s) continue;
    if (!dwell_alerted_.insert(tid).second) continue;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "tx %016llx unsettled for %.3fs",
                  static_cast<unsigned long long>(tid), dwell_s);
    raise(AnomalyKind::kCensorDwell, dwell_s, cfg_.censor_dwell_threshold_s,
          buf);
  }

  // suspicion-spike.
  if (window_suspicions_ > cfg_.suspicion_spike_threshold) {
    raise(AnomalyKind::kSuspicionSpike,
          static_cast<double>(window_suspicions_),
          static_cast<double>(cfg_.suspicion_spike_threshold),
          std::to_string(window_suspicions_) + " suspicions in one tick");
  }

  // reconcile-fail.
  const std::uint64_t total = window_reconcile_ok_ + window_reconcile_fail_;
  if (total >= cfg_.reconcile_min_samples) {
    const double ratio = static_cast<double>(window_reconcile_fail_) /
                         static_cast<double>(total);
    if (ratio >= cfg_.reconcile_failure_ratio) {
      raise(AnomalyKind::kReconcileFailure, ratio,
            cfg_.reconcile_failure_ratio,
            std::to_string(window_reconcile_fail_) + "/" +
                std::to_string(total) + " sketch decodes overflowed");
    }
  }

  // commit-slo: nearest-rank p95 over the window's settle latencies.
  if (!window_settle_latency_s_.empty()) {
    std::vector<double> sorted = window_settle_latency_s_;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(0.95 * static_cast<double>(sorted.size()))));
    const double p95 = sorted[rank - 1];
    if (p95 > cfg_.commit_latency_slo_s) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "settle p95 %.3fs over %zu tx(s)", p95,
                    sorted.size());
      raise(AnomalyKind::kCommitLatencySlo, p95, cfg_.commit_latency_slo_s,
            buf);
    }
  }

  window_suspicions_ = 0;
  window_reconcile_ok_ = 0;
  window_reconcile_fail_ = 0;
  window_settle_latency_s_.clear();
}

}  // namespace lo::harness
