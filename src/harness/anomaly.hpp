// AnomalyMonitor — online accountability anomaly detection over the harness
// feeds (DESIGN.md §5). Four streaming detectors run on a fixed tick:
//
//   censor-dwell     a submitted transaction has been in flight (no settle)
//                    longer than the dwell watermark — the primary online
//                    symptom of mempool censorship;
//   suspicion-spike  more new suspicions landed in one tick window than the
//                    churn threshold — an accountability storm in progress;
//   reconcile-fail   the sketch-decode failure ratio over a tick window
//                    exceeded the configured bound — reconciliation is
//                    operating past its capacity;
//   commit-slo       the p95 submit->settle latency of the tick window
//                    breached the commit-latency SLO.
//
// Determinism: feeds are called only in coordinator context (harness hook
// post() bodies and coordinator-scheduled closures), state uses ordered
// containers, and the tick itself is an ordinary coordinator timer — so the
// alert stream, the lo.anomaly.* counters and the kAnomaly trace events are
// byte-identical across worker counts (same argument as the invariant
// checker; DESIGN.md §4e). Feed bodies never emit trace events; only tick()
// does, from its own (coordinator) dispatch.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace lo::harness {

struct AnomalyConfig {
  double tick_interval_s = 1.0;
  // censor-dwell: alert when a tx stays unsettled this long (once per tx).
  double censor_dwell_threshold_s = 30.0;
  // suspicion-spike: alert when one tick window sees more new suspicions.
  std::uint64_t suspicion_spike_threshold = 16;
  // reconcile-fail: alert when fail/(ok+fail) >= ratio with enough samples.
  double reconcile_failure_ratio = 0.5;
  std::uint64_t reconcile_min_samples = 8;
  // commit-slo: alert when the window's p95 settle latency exceeds this.
  double commit_latency_slo_s = 10.0;
};

enum class AnomalyKind : std::uint32_t {
  kCensorDwell = 1,
  kSuspicionSpike = 2,
  kReconcileFailure = 3,
  kCommitLatencySlo = 4,
};

const char* anomaly_kind_name(AnomalyKind k) noexcept;

struct Alert {
  AnomalyKind kind;
  double when_s = 0.0;
  double value = 0.0;      // observed statistic
  double threshold = 0.0;  // configured bound it crossed
  std::string detail;      // human-readable one-liner
};

class AnomalyMonitor {
 public:
  AnomalyMonitor(sim::Simulator& sim, const AnomalyConfig& cfg);

  // Arms the recurring tick (coordinator timer). Call once.
  void start();

  // --- feeds (coordinator context only) ---
  void on_submit(std::uint64_t txid_short, sim::TimePoint created_at);
  void on_settle(std::uint64_t txid_short, sim::TimePoint when);
  void on_suspicion();
  void on_reconcile(bool decode_ok);

  const std::vector<Alert>& alerts() const noexcept { return alerts_; }
  std::uint64_t inflight() const noexcept { return inflight_.size(); }

 private:
  void schedule_tick();
  void tick();
  void raise(AnomalyKind kind, double value, double threshold,
             std::string detail);

  sim::Simulator& sim_;
  AnomalyConfig cfg_;
  bool started_ = false;
  sim::Duration period_ = 0;

  // Submitted-but-unsettled txs, keyed by short id (ordered: the dwell scan
  // iterates it, and iteration order is part of the determinism surface).
  std::map<std::uint64_t, sim::TimePoint> inflight_;
  std::set<std::uint64_t> dwell_alerted_;  // one dwell alert per tx

  // Per-tick windows, reset by tick().
  std::uint64_t window_suspicions_ = 0;
  std::uint64_t window_reconcile_ok_ = 0;
  std::uint64_t window_reconcile_fail_ = 0;
  std::vector<double> window_settle_latency_s_;

  std::vector<Alert> alerts_;

  // lo.anomaly.* counters (single-writer: coordinator only).
  std::uint64_t* c_alerts_[5] = {nullptr, nullptr, nullptr, nullptr, nullptr};
};

}  // namespace lo::harness
