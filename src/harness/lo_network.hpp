// LoNetwork — experiment harness assembling a full LØ deployment:
// simulator + latency model + overlay topology + LoNodes + workload +
// consensus stub + metric collection. Every evaluation figure and all
// integration tests drive the protocol through this class.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "consensus/chain.hpp"
#include "consensus/leader.hpp"
#include "core/config.hpp"
#include "core/node.hpp"
#include "harness/anomaly.hpp"
#include "overlay/topology.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "workload/txgen.hpp"

namespace lo::harness {

struct NetworkConfig {
  std::size_t num_nodes = 64;
  std::uint64_t seed = 1;

  core::LoConfig node;
  overlay::TopologyConfig topology;

  // Latency model: true = 32-city geographic model (paper setup); false =
  // constant latency (useful for deterministic unit tests).
  bool city_latency = true;
  sim::Duration constant_latency = 50 * sim::kMillisecond;

  // Malicious population: the first ceil(fraction*n) node ids after shuffling
  // by seed are faulty with `malicious` behavior. Honest-subgraph
  // connectivity is enforced as in Sec. 6.2.
  double malicious_fraction = 0.0;
  core::MaliciousBehavior malicious;
  bool connect_malicious_clique = true;  // paper: all malicious interconnected
  bool ensure_honest_connected = true;

  // Observability: enable the simulator's deterministic event tracer before
  // any node is constructed (so node-construction events are captured too).
  // `trace_capacity` sizes the ring; 0 keeps the tracer default.
  bool trace = false;
  std::size_t trace_capacity = 0;

  // Simulator worker shards (>= 1). 1 keeps the serial engine; W > 1 runs
  // the conservatively synchronized parallel engine — same-seed runs are
  // byte-identical for every W (DESIGN.md §4e).
  unsigned workers = 1;
};

struct DetectionTimes {
  // For each faulty node: the time by which EVERY correct node had
  // suspected/learned-exposure of it; <0 when incomplete.
  double suspicion_complete_s = -1.0;
  double exposure_complete_s = -1.0;
  double first_exposure_s = -1.0;  // first detection anywhere
  // The paper's Fig. 6 "Exposure" series measures dissemination: the time
  // from the FIRST node detecting a given attacker until ALL correct nodes
  // know that attacker, maximized over attackers; <0 when incomplete.
  double exposure_spread_s = -1.0;
};

class LoNetwork {
 public:
  explicit LoNetwork(const NetworkConfig& config);

  sim::Simulator& sim() noexcept { return sim_; }
  std::size_t size() const noexcept { return nodes_.size(); }
  core::LoNode& node(std::size_t i) { return *nodes_.at(i); }
  const std::vector<bool>& malicious_mask() const noexcept { return malicious_; }
  std::size_t malicious_count() const noexcept { return malicious_count_; }
  std::size_t correct_count() const noexcept {
    return nodes_.size() - malicious_count_;
  }
  const overlay::Topology& topology() const noexcept { return topology_; }

  // --- workload ---
  // Starts Poisson transaction injection: each tx is submitted to
  // `submit_fanout` random correct nodes. Runs until the simulation stops.
  void start_workload(const workload::WorkloadConfig& cfg,
                      std::size_t submit_fanout = 1);
  // Stops injection after the currently scheduled arrival (for drain phases).
  void stop_workload() noexcept { workload_stopped_ = true; }
  std::uint64_t txs_injected() const noexcept { return txs_injected_; }

  // --- consensus stub ---
  // Schedules block production: random leaders at the configured cadence.
  void start_block_production(const consensus::LeaderConfig& cfg,
                              bool correct_leaders_only = false);
  const consensus::Chain& chain() const noexcept { return chain_; }

  // --- fault injection ---
  // Crashes node i: marks it down in the simulator (suppressing its timers
  // and dropping its traffic) and wipes its volatile state; the commitment
  // log survives as "disk". No-op when already down.
  void crash_node(std::size_t i, bool wipe_mempool = false);
  // Restarts node i: marks it up, re-arms its periodic machinery and lets it
  // rejoin through the ordinary sync path. No-op when already up.
  void restart_node(std::size_t i);
  bool node_down(std::size_t i) const { return !sim_.node_up(static_cast<core::NodeId>(i)); }
  // Lazily constructed deterministic fault injector (seeded from the network
  // seed) with its crash/restart handlers wired to the two methods above.
  sim::FaultInjector& faults();
  // Convenience: random crash/restart churn through the fault injector.
  void start_churn(const sim::ChurnConfig& cfg) { faults().start_churn(cfg); }
  void stop_churn() {
    if (faults_) faults_->stop_churn();
  }

  // --- invariant checking ---
  // One synchronous sweep over all correct nodes; returns human-readable
  // violation descriptions (empty = healthy). Checks: no correct node is
  // exposed anywhere, no log double-commits an id, every held mempool tx of
  // a correct node is committed in its log.
  std::vector<std::string> check_invariants() const;
  // Runs check_invariants() every `period`; with fail_fast the first
  // violation throws std::runtime_error out of run_for(), failing the
  // enclosing test immediately. All violations are also recorded.
  void start_invariant_checker(sim::Duration period, bool fail_fast = true);
  const std::vector<std::string>& invariant_violations() const noexcept {
    return invariant_violations_;
  }

  // --- online anomaly detection ---
  // Arms the streaming accountability anomaly detectors (DESIGN.md §5):
  // censor-dwell watermark, suspicion-spike, reconcile-failure-rate and
  // commit-latency SLO. Alerts land in anomaly()->alerts(), lo.anomaly.*
  // counters and kAnomaly trace events. Settle is block inclusion when block
  // production runs, first mempool admit otherwise. Idempotent.
  AnomalyMonitor& start_anomaly_monitor(const AnomalyConfig& cfg = {});
  const AnomalyMonitor* anomaly() const noexcept { return anomaly_.get(); }

  // Aggregate retry/timeout/blame mechanism counters over all nodes.
  core::NodeStats total_stats() const;

  // Aggregate verification-cache hit/miss counters over all nodes (perf
  // diagnostics for the verify fast path; see DESIGN.md).
  crypto::VerifyCacheStats total_verify_cache_stats() const;

  // --- running ---
  void run_for(double seconds);

  // --- metrics ---
  // Fig. 7: per-(node, tx) mempool admission latencies, seconds.
  sim::Samples& mempool_latency() noexcept { return mempool_latency_; }
  // Fig. 8: creation -> first block inclusion, seconds.
  sim::Samples& block_latency() noexcept { return block_latency_; }
  // Folds harness-level measurements (latency samples, injection counters)
  // into the simulator's metrics registry so one snapshot/export covers the
  // whole run. Only samples recorded since the previous call are observed,
  // so repeated calls never double-count.
  void publish_metrics();
  // Fig. 6: detection completeness over the whole faulty population.
  DetectionTimes detection_times() const;
  // Fraction of correct nodes holding the tx with the given id.
  double coverage(const core::TxId& id) const;
  // Average number of correct nodes' mempools that converged on all txs.
  std::uint64_t total_sketch_decodes() const;

  // Raw event feeds for custom analyses.
  struct BlameEvent {
    core::NodeId observer;
    core::NodeId accused;
    double when_s;
  };
  const std::vector<BlameEvent>& suspicion_events() const noexcept {
    return suspicion_events_;
  }
  const std::vector<BlameEvent>& exposure_events() const noexcept {
    return exposure_events_;
  }

  // Membership (SWIM) observations; empty unless config.node.membership is
  // enabled. One event per failure-detector state transition at any node.
  struct MemberEvent {
    core::NodeId observer;
    core::NodeId member;
    membership::MemberState state;
    double when_s;
  };
  const std::vector<MemberEvent>& member_events() const noexcept {
    return member_events_;
  }
  // Crash -> first-confirmation latency samples, seconds: one per (observer,
  // crashed member) confirmation while the member was actually down. Also
  // published to the registry histogram "membership.detection_latency_s".
  const sim::Samples& membership_detection_latency() const noexcept {
    return membership_detection_latency_;
  }
  bool ever_crashed(std::size_t i) const { return ever_crashed_.at(i); }

 private:
  void schedule_next_tx();
  void schedule_next_block();
  void schedule_invariant_check();

  NetworkConfig config_;
  sim::Simulator sim_;
  overlay::Topology topology_;
  std::vector<std::unique_ptr<core::LoNode>> nodes_;
  std::vector<bool> malicious_;
  std::size_t malicious_count_ = 0;
  core::Hooks hooks_;

  std::unique_ptr<workload::TxGenerator> txgen_;
  std::size_t submit_fanout_ = 1;
  std::uint64_t txs_injected_ = 0;
  bool workload_stopped_ = false;

  std::unique_ptr<consensus::LeaderSchedule> leaders_;
  bool correct_leaders_only_ = false;
  consensus::Chain chain_;
  std::unordered_map<core::TxId, std::int64_t, core::TxIdHash> tx_created_;
  std::unordered_set<core::TxId, core::TxIdHash> tx_settled_;

  std::unique_ptr<AnomalyMonitor> anomaly_;
  std::unique_ptr<sim::FaultInjector> faults_;
  sim::Duration invariant_period_ = 0;
  bool invariant_fail_fast_ = true;
  std::vector<std::string> invariant_violations_;

  sim::Samples mempool_latency_;
  sim::Samples block_latency_;
  std::size_t published_mempool_ = 0;  // publish_metrics() high-water marks
  std::size_t published_block_ = 0;
  std::vector<BlameEvent> suspicion_events_;
  std::vector<BlameEvent> exposure_events_;
  std::vector<MemberEvent> member_events_;
  sim::Samples membership_detection_latency_;
  std::vector<double> crash_time_s_;  // per node; < 0 while the node is up
  std::vector<bool> ever_crashed_;
};

}  // namespace lo::harness
