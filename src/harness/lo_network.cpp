#include "harness/lo_network.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/ordered.hpp"

namespace lo::harness {

LoNetwork::LoNetwork(const NetworkConfig& config)
    : config_(config), sim_(config.seed) {
  const std::size_t n = config.num_nodes;

  // Tracing goes live before nodes exist so construction-time events (cache
  // binds, first timers) land in the stream too.
  if (config.trace_capacity > 0) {
    sim_.obs().tracer.set_capacity(config.trace_capacity);
  }
  if (config.trace) sim_.obs().tracer.enable(true);
  if (config.workers > 1) sim_.set_workers(config.workers);

  if (config.city_latency) {
    sim_.set_latency_model(std::make_shared<sim::CityLatencyModel>());
  } else {
    sim_.set_latency_model(
        std::make_shared<sim::ConstantLatency>(config.constant_latency));
  }

  // Malicious assignment: random subset of the requested size.
  malicious_.assign(n, false);
  malicious_count_ = static_cast<std::size_t>(
      config.malicious_fraction * static_cast<double>(n) + 0.5);
  if (malicious_count_ > 0) {
    auto idx = sim_.rng().sample_indices(n, malicious_count_);
    for (auto i : idx) malicious_[i] = true;
  }

  // Topology with the paper's degree limits, then the Sec. 6.2 preconditions.
  topology_ = overlay::Topology::random(n, config.topology, sim_.rng());
  if (config.ensure_honest_connected && malicious_count_ > 0) {
    std::vector<bool> honest(n);
    for (std::size_t i = 0; i < n; ++i) honest[i] = !malicious_[i];
    topology_.ensure_connected_among(honest, sim_.rng());
  }
  if (config.connect_malicious_clique && malicious_count_ > 1) {
    std::vector<core::NodeId> bad;
    for (std::size_t i = 0; i < n; ++i) {
      if (malicious_[i]) bad.push_back(static_cast<core::NodeId>(i));
    }
    for (std::size_t i = 0; i + 1 < bad.size(); ++i) {
      topology_.add_edge(bad[i], bad[i + 1]);  // ring suffices for collusion
    }
  }

  // Metric hooks. Hook bodies mutate harness-global accumulators, which are
  // outside the sharded node state — so each body is deferred through
  // Simulator::post(): under the serial engine it runs inline, under the
  // parallel engine it runs at the window barrier on the coordinator thread,
  // in global event-key order (the exact order the serial engine would have
  // used). Captures are plain values only.
  hooks_.on_mempool_admit = [this](core::NodeId, const core::Transaction& tx,
                                   sim::TimePoint when) {
    const double latency_s = sim::to_seconds(when - tx.created_at);
    const std::uint64_t tid = core::txid_short(tx.id);
    sim_.post([this, latency_s, tid, when] {
      mempool_latency_.add(latency_s);
      // Without a consensus stub, "settled" means first mempool admission
      // anywhere; with block production, schedule_next_block() settles at
      // first inclusion instead (and on_settle is first-wins either way).
      if (anomaly_ && !leaders_) anomaly_->on_settle(tid, when);
    });
  };
  hooks_.on_suspect = [this](core::NodeId node, core::NodeId suspect,
                             sim::TimePoint when) {
    sim_.post([this, node, suspect, when] {
      suspicion_events_.push_back(
          BlameEvent{node, suspect, sim::to_seconds(when)});
      if (anomaly_) anomaly_->on_suspicion();
    });
  };
  hooks_.on_reconcile = [this](core::NodeId, std::size_t, bool decode_ok) {
    if (!anomaly_) return;  // read-only during the run; set before run_for()
    sim_.post([this, decode_ok] { anomaly_->on_reconcile(decode_ok); });
  };
  hooks_.on_exposure = [this](core::NodeId node, core::NodeId accused,
                              sim::TimePoint when) {
    sim_.post([this, node, accused, when] {
      exposure_events_.push_back(
          BlameEvent{node, accused, sim::to_seconds(when)});
    });
  };
  hooks_.on_member_state = [this](core::NodeId node, core::NodeId member,
                                  membership::MemberState state,
                                  sim::TimePoint when) {
    sim_.post([this, node, member, state, when] {
      member_events_.push_back(
          MemberEvent{node, member, state, sim::to_seconds(when)});
      // Crash -> confirmation latency: only counted while the member is in
      // fact down (a confirm of a node that already restarted is stale news,
      // not a detection). crash_time_s_ only changes in coordinator context,
      // so reading it at the barrier sees exactly the serial engine's value.
      if (state == membership::MemberState::kConfirmed &&
          member < crash_time_s_.size() && crash_time_s_[member] >= 0.0) {
        const double latency_s = sim::to_seconds(when) - crash_time_s_[member];
        membership_detection_latency_.add(latency_s);
        sim_.obs().registry.histogram("membership.detection_latency_s")
            .observe(latency_s);
      }
    });
  };
  crash_time_s_.assign(n, -1.0);
  ever_crashed_.assign(n, false);

  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto keys = crypto::derive_keypair(config.seed * 0x10001ULL + i,
                                       config.node.sig_mode);
    auto node = std::make_unique<core::LoNode>(
        sim_, static_cast<core::NodeId>(i), config.node, keys, &hooks_);
    if (malicious_[i]) node->behavior() = config.malicious;
    const core::NodeId id = sim_.add_node(node.get());
    (void)id;
    nodes_.push_back(std::move(node));
  }
  for (std::size_t i = 0; i < n; ++i) {
    nodes_[i]->set_neighbors(topology_.neighbors(static_cast<core::NodeId>(i)));
  }
  if (config.node.rotate_interval > 0 || config.node.membership.enabled) {
    std::vector<core::NodeId> everyone(n);
    for (std::size_t i = 0; i < n; ++i) everyone[i] = static_cast<core::NodeId>(i);
    if (config.node.rotate_interval > 0) {
      for (std::size_t i = 0; i < n; ++i) nodes_[i]->set_peer_candidates(everyone);
    }
    if (config.node.membership.enabled) {
      // SWIM probes the full universe, not just overlay neighbors: liveness
      // is a property of the member, not of one overlay edge, and the full
      // rotation is what bounds worst-case detection time.
      for (std::size_t i = 0; i < n; ++i) nodes_[i]->set_member_universe(everyone);
    }
  }
}

void LoNetwork::start_workload(const workload::WorkloadConfig& cfg,
                               std::size_t submit_fanout) {
  txgen_ = std::make_unique<workload::TxGenerator>(cfg);
  submit_fanout_ = std::max<std::size_t>(1, submit_fanout);
  schedule_next_tx();
}

void LoNetwork::schedule_next_tx() {
  sim_.schedule(txgen_->next_gap_us(), [this] {
    if (workload_stopped_) return;
    auto tx = txgen_->next(sim_.now());
    tx_created_.emplace(tx.id, tx.created_at);
    ++txs_injected_;
    // Submit to random correct nodes (clients would avoid known-bad peers;
    // submitting to a censoring node would only measure the censorship).
    std::size_t placed = 0;
    int guard = 0;
    while (placed < submit_fanout_ && guard < 200) {
      ++guard;
      const auto i = sim_.rng().next_below(nodes_.size());
      if (malicious_[i]) continue;
      // Clients cannot reach a down node; they pick another correct peer.
      if (!sim_.node_up(static_cast<core::NodeId>(i))) continue;
      sim_.obs().tracer.emit(obs::EventKind::kTxSubmit,
                             static_cast<std::uint32_t>(i), 0,
                             core::txid_short(tx.id));
      nodes_[i]->submit_transaction(tx);
      ++placed;
    }
    if (anomaly_ && placed > 0) {
      anomaly_->on_submit(core::txid_short(tx.id), tx.created_at);
    }
    schedule_next_tx();
  });
}

void LoNetwork::start_block_production(const consensus::LeaderConfig& cfg,
                                       bool correct_leaders_only) {
  leaders_ = std::make_unique<consensus::LeaderSchedule>(nodes_.size(), cfg);
  correct_leaders_only_ = correct_leaders_only;
  schedule_next_block();
}

void LoNetwork::schedule_next_block() {
  sim_.schedule(leaders_->next_interval(), [this] {
    std::vector<bool> eligible;
    const std::vector<bool>* filter = nullptr;
    if (correct_leaders_only_ && malicious_count_ > 0) {
      eligible.resize(nodes_.size());
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        eligible[i] = !malicious_[i];
      }
      filter = &eligible;
    }
    // Sharded pipeline (DESIGN.md §7): one proposer draw per shard, ascending
    // shard order, all from the same slot. Every leader is drawn before any
    // block is built so the RNG stream depends only on k, never on liveness;
    // k = 1 is exactly the single pre-sharding draw.
    const std::uint32_t k = nodes_.empty() ? 1 : nodes_[0]->shard_count();
    const auto leaders = leaders_->next_leaders(k, filter);
    const double now_s = sim::to_seconds(sim_.now());
    for (std::uint32_t s = 0; s < k; ++s) {
      const auto leader = leaders[s];
      // A down proposer simply misses its shard's slot — the other shards
      // still produce; the thin combiner below just sees fewer blocks.
      if (!sim_.node_up(leader)) continue;
      // Cross-shard combiner: shard blocks are totally ordered into the one
      // global chain by (slot, shard) — each append extends the tip the
      // previous shard's block just created.
      const auto block = nodes_[leader]->create_block(chain_.height() + 1,
                                                      chain_.tip_hash(), s);
      chain_.append(block);
      // First-inclusion latency per transaction (Fig. 8 left).
      for (const auto& seg : block.segments) {
        for (const auto& id : seg.txids) {
          if (!tx_settled_.insert(id).second) continue;
          sim_.obs().tracer.emit(obs::EventKind::kTxFinalize, leader, 0,
                                 core::txid_short(id), block.height);
          if (anomaly_) anomaly_->on_settle(core::txid_short(id), sim_.now());
          auto it = tx_created_.find(id);
          if (it == tx_created_.end()) continue;
          block_latency_.add(now_s - sim::to_seconds(it->second));
        }
      }
    }
    schedule_next_block();
  });
}

void LoNetwork::run_for(double seconds) {
  sim_.run_until(sim_.now() + sim::from_seconds(seconds));
}

// --------------------------------------------------------- fault injection ----

void LoNetwork::crash_node(std::size_t i, bool wipe_mempool) {
  const auto id = static_cast<core::NodeId>(i);
  if (!sim_.node_up(id)) return;
  // Order matters: marking the node down first bumps its epoch, so nothing
  // the dying node scheduled can fire; then the node wipes volatile state.
  sim_.set_node_up(id, false);
  nodes_.at(i)->crash(wipe_mempool);
  crash_time_s_.at(i) = sim::to_seconds(sim_.now());
  ever_crashed_.at(i) = true;
}

void LoNetwork::restart_node(std::size_t i) {
  const auto id = static_cast<core::NodeId>(i);
  if (sim_.node_up(id)) return;
  // Up first: restart() re-arms timers under the current (live) epoch.
  sim_.set_node_up(id, true);
  nodes_.at(i)->restart();
  crash_time_s_.at(i) = -1.0;
}

AnomalyMonitor& LoNetwork::start_anomaly_monitor(const AnomalyConfig& cfg) {
  if (!anomaly_) {
    anomaly_ = std::make_unique<AnomalyMonitor>(sim_, cfg);
    anomaly_->start();
  }
  return *anomaly_;
}

sim::FaultInjector& LoNetwork::faults() {
  if (!faults_) {
    faults_ = std::make_unique<sim::FaultInjector>(
        sim_, config_.seed ^ 0x9e3779b97f4a7c15ULL,
        [this](core::NodeId id, bool wipe) { crash_node(id, wipe); },
        [this](core::NodeId id) { restart_node(id); });
  }
  return *faults_;
}

// ------------------------------------------------------ invariant checking ----

std::vector<std::string> LoNetwork::check_invariants() const {
  std::vector<std::string> out;
  const std::size_t n = nodes_.size();
  auto note = [&out](std::string msg) { out.push_back(std::move(msg)); };

  for (std::size_t i = 0; i < n; ++i) {
    if (malicious_[i]) continue;  // a faulty node's registry proves nothing
    // Accuracy (Sec. 3.2): no correct node may ever be *exposed* — exposure
    // requires cryptographic evidence no asynchrony or crash can fabricate.
    // Sorted so violation reports (and the determinism trace digest built
    // over them) do not depend on hash-set iteration order.
    for (core::NodeId accused : util::sorted_keys(nodes_[i]->registry().exposed())) {
      if (accused < n && !malicious_[accused]) {
        note("node " + std::to_string(i) + " falsely exposed correct node " +
             std::to_string(accused));
      }
    }
    // No double-commit: each append-only shard log holds each id at most
    // once, and no id appears in more than one shard's log (the partition
    // invariant: shard s may only commit ids with shard_of(id) == s).
    const std::uint32_t k = nodes_[i]->shard_count();
    std::unordered_set<core::TxId, core::TxIdHash> uniq;
    std::size_t total_committed = 0;
    bool partition_ok = true;
    for (std::uint32_t s = 0; s < k; ++s) {
      const auto& order = nodes_[i]->log(s).order();
      total_committed += order.size();
      uniq.insert(order.begin(), order.end());
      for (const auto& id : order) {
        if (nodes_[i]->shard_of(id) != s) partition_ok = false;
      }
    }
    if (uniq.size() != total_committed) {
      note("node " + std::to_string(i) + " double-committed " +
           std::to_string(total_committed - uniq.size()) + " id(s)");
    }
    if (!partition_ok) {
      note("node " + std::to_string(i) +
           " committed an id outside its content-hash shard");
    }
    // Log/mempool consistency: everything a correct node holds it has also
    // committed to (admission commits immediately; only malicious nodes
    // stealth-store content off the record). The committing log must be the
    // id's own shard log.
    for (const auto& [id, tx] : nodes_[i]->mempool()) {
      if (!nodes_[i]->log(nodes_[i]->shard_of(id)).contains(id)) {
        note("node " + std::to_string(i) +
             " holds a mempool tx missing from its commitment log");
        break;
      }
    }
    // Membership accuracy: a correct node that is up and has never crashed
    // answers every probe (directly or through proxies), so no correct
    // observer may hold it *confirmed* faulty. (Transient suspicion is fine
    // — that is what the refutation window is for; and a node that did crash
    // may legitimately stay confirmed until its rejoin gossip lands.)
    if (const auto* det = nodes_[i]->swim()) {
      for (const auto& [member, ms] : det->members()) {
        if (ms.state != membership::MemberState::kConfirmed) continue;
        if (member < n && !malicious_[member] &&
            sim_.node_up(member) && !ever_crashed_[member]) {
          note("node " + std::to_string(i) +
               " confirmed live correct node " + std::to_string(member) +
               " as faulty");
        }
      }
    }
  }
  return out;
}

void LoNetwork::start_invariant_checker(sim::Duration period, bool fail_fast) {
  invariant_period_ = std::max<sim::Duration>(1, period);
  invariant_fail_fast_ = fail_fast;
  schedule_invariant_check();
}

void LoNetwork::schedule_invariant_check() {
  sim_.schedule(invariant_period_, [this] {
    auto violations = check_invariants();
    if (!violations.empty()) {
      std::string joined;
      for (const auto& v : violations) {
        if (!joined.empty()) joined += "; ";
        joined += v;
      }
      invariant_violations_.insert(invariant_violations_.end(),
                                   violations.begin(), violations.end());
      if (invariant_fail_fast_) {
        throw std::runtime_error("invariant violation at t=" +
                                 std::to_string(sim::to_seconds(sim_.now())) +
                                 "s: " + joined);
      }
    }
    schedule_invariant_check();
  });
}

core::NodeStats LoNetwork::total_stats() const {
  core::NodeStats sum;
  for (const auto& n : nodes_) sum += n->stats();
  return sum;
}

crypto::VerifyCacheStats LoNetwork::total_verify_cache_stats() const {
  crypto::VerifyCacheStats sum;
  for (const auto& n : nodes_) sum += n->verify_cache_stats();
  return sum;
}

void LoNetwork::publish_metrics() {
  auto& reg = sim_.obs().registry;
  reg.gauge("harness.txs_injected") = static_cast<double>(txs_injected_);
  reg.gauge("harness.txs_settled") = static_cast<double>(tx_settled_.size());
  reg.gauge("harness.chain_height") = static_cast<double>(chain_.height());
  auto& mempool_h = reg.histogram("harness.mempool_latency_s");
  for (std::size_t i = published_mempool_; i < mempool_latency_.count(); ++i) {
    mempool_h.observe(mempool_latency_.values()[i]);
  }
  published_mempool_ = mempool_latency_.count();
  auto& block_h = reg.histogram("harness.block_latency_s");
  for (std::size_t i = published_block_; i < block_latency_.count(); ++i) {
    block_h.observe(block_latency_.values()[i]);
  }
  published_block_ = block_latency_.count();
}

double LoNetwork::coverage(const core::TxId& id) const {
  std::size_t holders = 0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (malicious_[i]) continue;
    ++correct;
    if (nodes_[i]->has_tx(id)) ++holders;
  }
  return correct == 0 ? 0.0
                      : static_cast<double>(holders) /
                            static_cast<double>(correct);
}

std::uint64_t LoNetwork::total_sketch_decodes() const {
  std::uint64_t sum = 0;
  for (const auto& n : nodes_) sum += n->sketch_decodes();
  return sum;
}

DetectionTimes LoNetwork::detection_times() const {
  DetectionTimes out;
  if (malicious_count_ == 0) return out;

  // For completeness we need, for every (correct node, faulty node) pair, the
  // first time the correct node blamed the faulty one.
  const std::size_t n = nodes_.size();
  auto pair_key = [n](core::NodeId a, core::NodeId b) {
    return static_cast<std::uint64_t>(a) * n + b;
  };

  auto complete_time = [&](const std::vector<BlameEvent>& events) {
    std::unordered_map<std::uint64_t, double> first;
    for (const auto& ev : events) {
      if (ev.observer >= n || ev.accused >= n) continue;
      if (malicious_[ev.observer] || !malicious_[ev.accused]) continue;
      auto [it, inserted] = first.emplace(pair_key(ev.observer, ev.accused), ev.when_s);
      if (!inserted && ev.when_s < it->second) it->second = ev.when_s;
    }
    const std::size_t want = (n - malicious_count_) * malicious_count_;
    if (first.size() < want) return -1.0;
    double latest = 0.0;
    for (const auto& [k, t] : first) latest = std::max(latest, t);
    return latest;
  };

  out.suspicion_complete_s = complete_time(suspicion_events_);
  out.exposure_complete_s = complete_time(exposure_events_);
  if (!exposure_events_.empty()) {
    double first = exposure_events_.front().when_s;
    for (const auto& ev : exposure_events_) first = std::min(first, ev.when_s);
    out.first_exposure_s = first;
  }

  // Per-attacker dissemination lag (paper's Fig. 6 "Exposure" measurement).
  if (out.exposure_complete_s >= 0) {
    std::unordered_map<core::NodeId, double> first_by;
    std::unordered_map<core::NodeId, double> last_by;
    std::unordered_map<core::NodeId, std::size_t> seen_by;
    std::unordered_map<std::uint64_t, bool> pair_seen;
    for (const auto& ev : exposure_events_) {
      if (ev.observer >= n || ev.accused >= n) continue;
      if (malicious_[ev.observer] || !malicious_[ev.accused]) continue;
      if (!pair_seen.emplace(pair_key(ev.observer, ev.accused), true).second) {
        continue;
      }
      auto [fit, fnew] = first_by.emplace(ev.accused, ev.when_s);
      if (!fnew) fit->second = std::min(fit->second, ev.when_s);
      auto [lit, lnew] = last_by.emplace(ev.accused, ev.when_s);
      if (!lnew) lit->second = std::max(lit->second, ev.when_s);
      ++seen_by[ev.accused];
    }
    double spread = 0.0;
    bool all = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!malicious_[i]) continue;
      const auto id = static_cast<core::NodeId>(i);
      if (seen_by[id] < n - malicious_count_) {
        all = false;
        break;
      }
      spread = std::max(spread, last_by[id] - first_by[id]);
    }
    if (all) out.exposure_spread_s = spread;
  }
  return out;
}

}  // namespace lo::harness
